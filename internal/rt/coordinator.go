package rt

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fela/internal/metrics"
	"fela/internal/minidnn"
	"fela/internal/obs"
	"fela/internal/trace"
	"fela/internal/transport"
)

// Coordinator is the real-time Token Server plus the BSP parameter
// synchronizer. It owns the master copy of the model, seeds one STB per
// worker each iteration, serves pull requests (own shard first, then
// stealing from the largest backlog), and applies the canonical-order
// gradient aggregation that makes the run bit-equal to Sequential.
//
// With Config.WorkerTimeout set, the coordinator is fault tolerant: a
// worker whose connection errors, or that sits on an assigned token past
// the deadline, is declared dead. Its unreported tokens return to the
// pool, parked pull requests are re-served, and the iteration completes
// on the survivors — the paper's reactive straggler mitigation (§III-A)
// extended from slowness to outright crashes. Because aggregation stays
// in canonical token order, the result remains bit-identical to
// Sequential no matter which workers die or when.
//
// With Config.Elastic set, membership is live: connections handed to
// Admit may join mid-session, workers may drain out gracefully, and the
// policy may evict workers — all applied at iteration barriers, so every
// iteration runs under one fixed membership. A graceful leave is a
// planned death: the drainer's outstanding tokens flow back through the
// same return path as a crashed worker's, which is why elasticity adds
// no new failure semantics.
type Coordinator struct {
	net *minidnn.Network
	cfg Config

	start   time.Time
	events  chan event
	workers []*workerState
	byConn  map[transport.Conn]*workerState
	res     *Result

	// initial marks the connections handed to Run (vs admitted later);
	// rejected marks connections shut for protocol violations, so their
	// pump's closing error is not double-counted.
	initial  map[transport.Conn]bool
	rejected map[transport.Conn]bool

	// admMu guards admitted, the connections handed to Admit by
	// listener goroutines; everything else is coordinator-goroutine
	// state.
	admMu    sync.Mutex
	admitted []transport.Conn

	// pendingJoins are admitted connections that asked to join, FIFO;
	// pendingLeaves are workers that announced a drain. Both wait for an
	// iteration barrier. pendingJoinReq remembers each pending joiner's
	// requested gradient codec until admission negotiates it.
	pendingJoins   []transport.Conn
	pendingJoinReq map[transport.Conn]transport.Compression
	pendingLeaves  []*workerState

	// Per-iteration state.
	it         int
	tokens     []*tokenState
	waiting    []*workerState // parked pull requests, FIFO
	iterTokens map[int]int    // tokens reported per worker this iteration

	// gradViews[seq] are the per-tensor views every report's gradients
	// are copied into, all carved from one session-long arena. Copying
	// at report time (instead of keeping m.Grads until the barrier) is
	// what lets pooled transport messages be released immediately, and
	// it hoists the per-report slice allocations out of the hot loop.
	gradViews [][][]float32

	// Telemetry (internal/obs). tele instruments are nil-safe no-ops
	// when Config.Metrics is nil; status is the atomically published
	// /statusz snapshot; rates holds the per-worker EWMA token rates;
	// iterSpan is the current iteration's root span, whose context the
	// iter-start broadcast carries to workers.
	tele     coTelemetry
	status   atomic.Pointer[Status]
	rates    map[int]float64
	iterSpan *obs.Span
	flight   *obs.FlightRecorder
}

// NewCoordinator wraps the master network.
func NewCoordinator(net *minidnn.Network, cfg Config) (*Coordinator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	co := &Coordinator{
		net:            net,
		cfg:            cfg,
		events:         make(chan event, 16*cfg.Workers+64),
		byConn:         map[transport.Conn]*workerState{},
		initial:        map[transport.Conn]bool{},
		rejected:       map[transport.Conn]bool{},
		tele:           newCoTelemetry(cfg.Metrics),
		rates:          map[int]float64{},
		pendingJoinReq: map[transport.Conn]transport.Compression{},
		flight:         obs.FlightOr(cfg.Flight),
		start:          time.Now(),
		res:            &Result{TokensByWorker: make([]int, cfg.Workers)},
		it:             -1,
	}
	// Publish an initial snapshot so /statusz answers from the moment
	// the coordinator exists, not only after registration completes.
	co.publishStatus()
	return co, nil
}

type event struct {
	msg  *transport.Message
	err  error
	conn transport.Conn
}

// tokenState tracks one token within an iteration.
type tokenState struct {
	info     transport.TokenInfo
	assigned bool
	done     bool
	grads    [][]float32
	loss     float64
	// span is the coordinator-side round-trip span of the current
	// assignment (nil when tracing is off); its context rode to the
	// worker inside the assign message.
	span *obs.Span
}

// workerState tracks one worker across the session.
type workerState struct {
	wid   int
	conn  transport.Conn
	alive bool
	// draining marks a worker that announced a graceful leave: it no
	// longer receives tokens and departs at the next barrier.
	draining bool
	// departed marks a planned removal (drain or eviction) as opposed
	// to a death; departed workers never appear in DeadWorkers.
	departed bool
	// outstanding maps assigned-but-unreported token seqs to their
	// assignment time, the basis for hang detection.
	outstanding map[int]time.Time
	// codec is the gradient codec negotiated at registration: the
	// worker's request when it matches Config.Compress, exact otherwise.
	// Reports must arrive under this codec or exact (transports without
	// codec support degrade to exact, which is always legal).
	codec transport.Compression
}

// errWorkerHung marks a deadline expiry on an assigned token.
var errWorkerHung = errors.New("rt: worker deadline expired with token outstanding")

// errProtocol marks a well-formed message that violates the protocol
// state machine (e.g. a token request before registration).
var errProtocol = errors.New("rt: protocol violation")

// recordFlight stamps a coordinator protocol event into the flight
// recorder with the current iteration filled in.
func (co *Coordinator) recordFlight(event string, wid int, trace string, detail string) {
	ev := obs.Evt("rt", event)
	ev.Worker = wid
	ev.Iter = co.it
	ev.Trace = trace
	ev.Detail = detail
	co.flight.Record(ev)
}

// negotiate resolves a worker's requested gradient codec against the
// session's permit (Config.Compress): the request wins only when it
// matches the permit exactly; any mismatch degrades to lossless. wid is
// only for the flight record (-1 for not-yet-admitted joiners).
func (co *Coordinator) negotiate(wid int, req transport.Compression) transport.Compression {
	neg := transport.CompressExact
	if req.Valid() && req == co.cfg.Compress {
		neg = req
	}
	if req != transport.CompressExact || co.cfg.Compress != transport.CompressExact {
		co.recordFlight("compress.negotiate", wid, "",
			fmt.Sprintf("req=%v permit=%v negotiated=%v", req, co.cfg.Compress, neg))
	}
	return neg
}

// faultTolerant reports whether fault handling is enabled.
func (co *Coordinator) faultTolerant() bool { return co.cfg.WorkerTimeout > 0 }

// elastic reports whether live membership is enabled.
func (co *Coordinator) elastic() bool { return co.cfg.Elastic != nil }

// pump forwards a connection's messages into the event loop until the
// connection errors.
func (co *Coordinator) pump(c transport.Conn) {
	go func() {
		for {
			m, err := c.Recv()
			co.events <- event{m, err, c}
			if err != nil {
				return
			}
		}
	}()
}

// Admit hands a freshly accepted connection to an elastic session. The
// peer must introduce itself with a join message; it becomes a worker at
// an iteration barrier, subject to the membership policy. Admit is safe
// to call from listener goroutines concurrently with Run, before or
// during the session.
func (co *Coordinator) Admit(c transport.Conn) error {
	if !co.elastic() {
		return fmt.Errorf("rt: Admit requires an elastic session (Config.Elastic)")
	}
	c = transport.Instrument(c, co.cfg.Metrics)
	co.admMu.Lock()
	co.admitted = append(co.admitted, c)
	co.admMu.Unlock()
	co.pump(c)
	return nil
}

// Run drives a full session over the given worker connections. It
// returns after broadcasting shutdown. Connections are not closed unless
// their worker is declared dead or departs.
func (co *Coordinator) Run(conns []transport.Conn) (*Result, error) {
	if len(conns) != co.cfg.Workers {
		return nil, fmt.Errorf("rt: %d connections for %d workers", len(conns), co.cfg.Workers)
	}
	co.start = time.Now()
	co.res = &Result{TokensByWorker: make([]int, co.cfg.Workers)}
	co.workers = make([]*workerState, co.cfg.Workers)
	for wid := range co.workers {
		co.workers[wid] = &workerState{wid: wid, outstanding: map[int]time.Time{}}
	}
	// Wrap every connection with telemetry (a no-op pass-through when
	// Config.Metrics is nil); the wrapped handle is the identity used in
	// byConn/initial from here on.
	conns = append([]transport.Conn(nil), conns...)
	for i, c := range conns {
		conns[i] = transport.Instrument(c, co.cfg.Metrics)
	}
	for _, c := range conns {
		co.initial[c] = true
		co.pump(c)
	}

	if err := co.register(conns); err != nil {
		return nil, err
	}
	co.it = -1 // no iteration completed yet; the loop below resets it
	co.publishStatus()
	co.tele.live.Set(float64(co.trainableCount()))

	nTok := co.cfg.tokensPerIter()
	frac := float32(co.cfg.TokenBatch) / float32(co.cfg.TotalBatch)
	vel := zerosLike(co.net.Params())
	acc := zerosLike(co.net.Params())
	co.initGradArena(nTok)

	// Restore a checkpointed session: install the barrier state, replay
	// the loss history, and start the loop at the next iteration. The
	// canonical-order aggregation then recomputes the uncheckpointed
	// tail exactly as an uninterrupted run would have.
	startIter := 0
	if r := co.cfg.Resume; r != nil {
		if err := InstallFlat(co.net.Params(), r.Params); err != nil {
			return nil, fmt.Errorf("rt: resume params: %w", err)
		}
		if err := InstallFlat(vel, r.Vel); err != nil {
			return nil, fmt.Errorf("rt: resume velocity: %w", err)
		}
		co.res.Losses = append(co.res.Losses, r.Losses...)
		startIter = r.Iter + 1
		co.recordFlight("restore.resume", -1, "",
			fmt.Sprintf("iter=%d of %d", r.Iter, co.cfg.Iterations))
	}

	for co.it = startIter; co.it < co.cfg.Iterations; co.it++ {
		iterStart := time.Now()
		if err := co.runIteration(nTok); err != nil {
			return nil, err
		}
		// Canonical-order aggregation: identical arithmetic to
		// Sequential, so results match bitwise. Gradient sizes were
		// validated when each report arrived (see the KindReport case),
		// so every view here matches its accumulator.
		barrierStart := time.Now()
		zeroAll(acc)
		var loss float64
		for _, tok := range co.tokens {
			loss += tok.loss / float64(nTok)
			for i := range acc {
				for j, g := range tok.grads[i] {
					acc[i].Data[j] += frac * g
				}
			}
		}
		applyUpdate(co.net, vel, acc, co.cfg)
		co.res.Losses = append(co.res.Losses, loss)
		if co.cfg.checkpointDue(co.it) {
			// The hook gets copies (flatten allocates): the checkpoint
			// must not alias live state the next iteration mutates.
			if err := co.cfg.Checkpoint(co.it, flatten(co.net.Params()), flatten(vel), slices.Clone(co.res.Losses)); err != nil {
				return nil, fmt.Errorf("rt: checkpoint at iteration %d: %w", co.it, err)
			}
		}
		iterTime := time.Since(iterStart)
		co.observeIteration(iterTime)
		co.applyMembership(iterTime)
		co.tele.barrier.Observe(time.Since(barrierStart).Seconds())
		co.recordFlight("barrier", -1, co.iterSpan.Context().TraceHex(),
			fmt.Sprintf("live=%d iter_ms=%d", co.trainableCount(), iterTime.Milliseconds()))
		co.iterSpan.End()
		co.iterSpan = nil
		co.publishStatus()
	}

	for _, ws := range co.workers {
		if !ws.alive {
			continue
		}
		if err := ws.conn.Send(&transport.Message{Kind: transport.KindShutdown}); err != nil {
			if !co.faultTolerant() {
				return nil, fmt.Errorf("rt: shutdown to worker %d: %w", ws.wid, err)
			}
			co.markDead(ws, "shutdown", err)
		}
	}
	co.closeLeftoverAdmitted()
	for _, ws := range co.workers {
		if !ws.alive && !ws.departed {
			co.res.DeadWorkers = append(co.res.DeadWorkers, ws.wid)
		}
	}
	co.res.Params = co.net.CloneParams()
	co.publishStatus()
	return co.res, nil
}

// closeLeftoverAdmitted shuts down admitted connections that never
// became workers (still waiting for admission, or never sent a join).
func (co *Coordinator) closeLeftoverAdmitted() {
	co.admMu.Lock()
	admitted := co.admitted
	co.admMu.Unlock()
	for _, c := range admitted {
		if _, became := co.byConn[c]; became {
			continue
		}
		_ = c.Send(&transport.Message{Kind: transport.KindShutdown})
		c.Close()
	}
	co.pendingJoins = nil
	co.pendingJoinReq = map[transport.Conn]transport.Compression{}
}

// register pairs worker ids with connections. In fault-tolerant mode a
// connection that dies, stays silent past WorkerTimeout, or violates the
// protocol forfeits its slot without taking the session down; the
// session proceeds if at least one worker registered.
func (co *Coordinator) register(conns []transport.Conn) error {
	resolved := 0
	var deadline <-chan time.Time
	if co.faultTolerant() {
		tm := time.NewTimer(co.cfg.WorkerTimeout)
		defer tm.Stop()
		deadline = tm.C
	}
wait:
	for resolved < len(conns) {
		select {
		case ev := <-co.events:
			if ev.err != nil {
				if co.rejected[ev.conn] {
					continue // already accounted when it was rejected
				}
				if ws, known := co.byConn[ev.conn]; known {
					// Registered, then died before the first iteration.
					if !co.faultTolerant() {
						return fmt.Errorf("rt: worker %d lost during registration: %w", ws.wid, ev.err)
					}
					co.markDead(ws, "register", ev.err)
					continue
				}
				if !co.initial[ev.conn] {
					co.dropPendingJoin(ev.conn, "register", ev.err)
					continue
				}
				resolved++
				if !co.faultTolerant() {
					return fmt.Errorf("rt: worker lost during registration: %w", ev.err)
				}
				co.recordFault(-1, "register", transport.Classify(ev.err).String(), ev.err.Error())
				continue
			}
			if ws, known := co.byConn[ev.conn]; known {
				// A registered worker must stay quiet until iter-start.
				detail := fmt.Errorf("%w: worker %d sent %v during registration", errProtocol, ws.wid, ev.msg.Kind)
				if !co.faultTolerant() {
					return detail
				}
				co.markDead(ws, "register", detail)
				continue
			}
			if co.elastic() && ev.msg.Kind == transport.KindJoin {
				// An early joiner: park it for the first barrier. If it
				// arrived on one of the initial connections it consumed a
				// registration slot, which fault tolerance absorbs.
				co.pendingJoins = append(co.pendingJoins, ev.conn)
				co.pendingJoinReq[ev.conn] = ev.msg.GradCodec()
				if co.initial[ev.conn] {
					resolved++
				}
				continue
			}
			if ev.msg.Kind != transport.KindRegister {
				// Identify the offending connection by its slot index so
				// the operator knows which peer misbehaved; in
				// fault-tolerant mode only that connection is shot.
				idx := co.connIndex(conns, ev.conn)
				detail := fmt.Sprintf("conn %d: expected register, got %v (wid field %d)", idx, ev.msg.Kind, ev.msg.WID)
				if !co.faultTolerant() {
					return fmt.Errorf("rt: %s", detail)
				}
				co.rejected[ev.conn] = true
				ev.conn.Close()
				co.recordFault(-1, "register", "protocol", detail)
				if co.initial[ev.conn] {
					resolved++
				}
				continue
			}
			wid := ev.msg.WID
			if wid < 0 || wid >= co.cfg.Workers {
				detail := fmt.Sprintf("conn %d: worker id %d out of range [0,%d)", co.connIndex(conns, ev.conn), wid, co.cfg.Workers)
				if !co.faultTolerant() {
					return fmt.Errorf("rt: %s", detail)
				}
				co.rejected[ev.conn] = true
				ev.conn.Close()
				co.recordFault(-1, "register", "protocol", detail)
				if co.initial[ev.conn] {
					resolved++
				}
				continue
			}
			ws := co.workers[wid]
			if ws.conn != nil {
				detail := fmt.Sprintf("conn %d: duplicate worker id %d", co.connIndex(conns, ev.conn), wid)
				if !co.faultTolerant() {
					return fmt.Errorf("rt: %s", detail)
				}
				co.rejected[ev.conn] = true
				ev.conn.Close()
				co.recordFault(wid, "register", "protocol", detail)
				if co.initial[ev.conn] {
					resolved++
				}
				continue
			}
			ws.conn = ev.conn
			ws.alive = true
			ws.codec = co.negotiate(wid, ev.msg.GradCodec())
			co.byConn[ev.conn] = ws
			resolved++
		case <-deadline:
			// Whoever has not spoken by now forfeits registration.
			break wait
		}
	}
	live := 0
	for _, ws := range co.workers {
		if ws.alive {
			live++
		} else if ws.conn == nil {
			co.recordFault(ws.wid, "register", "missing", "never registered")
		}
	}
	if live == 0 {
		return fmt.Errorf("rt: no workers registered")
	}
	return nil
}

// initGradArena carves nTok sets of per-tensor gradient views out of one
// flat float32 arena sized to the whole iteration's gradient volume. The
// arena lives for the session and is overwritten every iteration —
// reports are copied into their token's views as they arrive, replacing
// the old pattern of retaining every report's freshly allocated slices
// until the barrier.
func (co *Coordinator) initGradArena(nTok int) {
	params := co.net.Params()
	per := 0
	for _, t := range params {
		per += t.Len()
	}
	arena := make([]float32, nTok*per)
	co.gradViews = make([][][]float32, nTok)
	off := 0
	for seq := range co.gradViews {
		views := make([][]float32, len(params))
		for i, t := range params {
			n := t.Len()
			views[i] = arena[off : off+n : off+n]
			off += n
		}
		co.gradViews[seq] = views
	}
}

// connIndex locates a connection among the initial slots (-1 for
// admitted connections).
func (co *Coordinator) connIndex(conns []transport.Conn, c transport.Conn) int {
	for i, cc := range conns {
		if cc == c {
			return i
		}
	}
	return -1
}

// runIteration seeds this iteration's tokens, broadcasts parameters, and
// collects every token's gradients, surviving worker deaths along the
// way in fault-tolerant mode.
func (co *Coordinator) runIteration(nTok int) error {
	// Seed tokens. Without elasticity a token seq's shard owner is seq
	// mod workers, so every worker starts with its own STB (Eq. 2's
	// floor); with elasticity the membership policy's re-tuner chooses
	// the distribution over the live set. Ownership only steers who
	// trains first — aggregation order is fixed by seq — so any
	// distribution preserves bitwise reproducibility.
	owners := co.ownership(nTok)
	if owners == nil {
		return fmt.Errorf("rt: no trainable workers at iteration %d start", co.it)
	}
	co.tokens = make([]*tokenState, nTok)
	for seq := 0; seq < nTok; seq++ {
		co.tokens[seq] = &tokenState{info: transport.TokenInfo{
			ID:    co.it*nTok + seq,
			Seq:   seq,
			Lo:    seq * co.cfg.TokenBatch,
			Hi:    (seq + 1) * co.cfg.TokenBatch,
			Owner: owners[seq],
		}}
	}
	co.waiting = co.waiting[:0]
	co.iterTokens = map[int]int{}
	// One root span per iteration; its context rides in the iter-start
	// broadcast so worker-side fetch/compute spans join the same trace.
	co.iterSpan = co.cfg.Spans.StartRoot("iteration", 0)
	params := flatten(co.net.Params())
	start := &transport.Message{Kind: transport.KindIterStart, Iter: co.it, Params: params, Span: co.iterSpan.Context()}
	// Encode-once fan-out: over the binary codec the parameter payload
	// is serialized exactly once per iteration and every worker —
	// including joiners admitted at this barrier — receives the same
	// cached frame. Transports without shareable frames fall back to a
	// plain send of the same message.
	bc := transport.NewBroadcast(start)
	for _, ws := range co.workers {
		if !ws.alive || ws.draining {
			continue
		}
		if err := transport.SendBroadcast(ws.conn, bc); err != nil {
			if !co.faultTolerant() {
				return fmt.Errorf("rt: iter-start to worker %d: %w", ws.wid, err)
			}
			co.markDead(ws, "iteration", err)
		}
	}
	if co.trainableCount() == 0 {
		return fmt.Errorf("rt: all workers lost at iteration %d start", co.it)
	}

	var tick <-chan time.Time
	if co.faultTolerant() {
		period := co.cfg.WorkerTimeout / 4
		if period < time.Millisecond {
			period = time.Millisecond
		}
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		tick = ticker.C
	}

	remaining := nTok
	for remaining > 0 {
		select {
		case ev := <-co.events:
			ws := co.byConn[ev.conn]
			if ws == nil {
				if err := co.strayEvent(ev); err != nil {
					return err
				}
				continue
			}
			if ev.err != nil {
				if !ws.alive {
					continue // pump winding down after markDead closed it
				}
				if ws.draining {
					// A drain racing a real death: the departure was
					// already planned and its tokens already returned, so
					// finalize quietly; the leave completes (and is
					// recorded) at the barrier as scheduled.
					ws.alive = false
					ws.departed = true
					ws.conn.Close()
					continue
				}
				if !co.faultTolerant() {
					return fmt.Errorf("rt: worker connection failed: %w", ev.err)
				}
				co.markDead(ws, "iteration", ev.err)
				if err := co.serveWaiting(); err != nil {
					return err
				}
				continue
			}
			if !ws.alive {
				continue // zombie: message raced with the death verdict
			}
			m := ev.msg
			switch m.Kind {
			case transport.KindRequest:
				if ws.draining {
					continue // request in flight raced the leave announcement
				}
				tok := pick(co.tokens, ws.wid)
				if tok == nil {
					// Nothing assignable now. Park the request so a
					// token freed by a later death can be re-served;
					// otherwise the worker waits for the next
					// iter-start and re-requests itself.
					co.waiting = append(co.waiting, ws)
					continue
				}
				if err := co.sendAssign(ws, tok); err != nil {
					if !co.faultTolerant() {
						return fmt.Errorf("rt: assign to worker %d: %w", ws.wid, err)
					}
					if co.elastic() {
						// The conn may have closed because a leave is in
						// flight; revert the token and let the recv pump
						// deliver the real verdict (leave or death) in
						// message order instead of ruling death here.
						co.unassign(ws, tok)
					} else {
						co.markDead(ws, "iteration", err)
					}
					if err := co.serveWaiting(); err != nil {
						return err
					}
				}
			case transport.KindReport:
				seq := m.Token.Seq
				if seq < 0 || seq >= nTok || co.tokens[seq].done {
					return fmt.Errorf("rt: bogus report for token seq %d", seq)
				}
				// Exact is always legal (codec-blind transports degrade to
				// it losslessly); anything else must match the negotiation.
				if rc := m.GradCodec(); rc != transport.CompressExact && rc != ws.codec {
					return fmt.Errorf("rt: worker %d reported with codec %v, negotiated %v", ws.wid, rc, ws.codec)
				}
				// Validate and copy the gradients into the token's arena
				// views now, so the (possibly pooled) message can be
				// released instead of retained until the barrier.
				views := co.gradViews[seq]
				if len(m.Grads) != len(views) {
					return fmt.Errorf("rt: report for token %d carries %d gradient tensors, want %d", seq, len(m.Grads), len(views))
				}
				for i, g := range m.Grads {
					if len(g) != len(views[i]) {
						return fmt.Errorf("rt: gradient %d size mismatch", i)
					}
					copy(views[i], g)
				}
				tok := co.tokens[seq]
				tok.done = true
				tok.grads = views
				tok.loss = m.Loss
				if assignedAt, ok := ws.outstanding[seq]; ok {
					// The round-trip span's context makes the worst token
					// the histogram's exemplar — follow trace_id from a
					// /metrics scrape straight into the trace.
					co.tele.tokenLat.ObserveExemplar(time.Since(assignedAt).Seconds(), tok.span.Context())
				}
				tok.span.End()
				tok.span = nil
				delete(ws.outstanding, seq)
				co.res.TokensByWorker[ws.wid]++
				co.iterTokens[ws.wid]++
				co.cfg.Metrics.Counter(MetricTokensTotal, "worker", strconv.Itoa(ws.wid)).Inc()
				if tok.info.Owner != ws.wid {
					co.res.Steals++
					co.tele.steals.Inc()
				}
				remaining--
				m.Release() // gradients are copied out; recycle the codec arena
			case transport.KindLeave:
				if !co.elastic() {
					detail := fmt.Errorf("%w: worker %d sent leave without elastic mode", errProtocol, ws.wid)
					if !co.faultTolerant() {
						return detail
					}
					co.markDead(ws, "iteration", detail)
					if err := co.serveWaiting(); err != nil {
						return err
					}
					continue
				}
				co.announceDrain(ws)
				if err := co.serveWaiting(); err != nil {
					return err
				}
			default:
				detail := fmt.Errorf("%w: worker %d sent unexpected %v mid-iteration", errProtocol, ws.wid, m.Kind)
				if !co.faultTolerant() {
					return detail
				}
				co.markDead(ws, "iteration", detail)
				if err := co.serveWaiting(); err != nil {
					return err
				}
			}
		case <-tick:
			now := time.Now()
			for _, ws := range co.workers {
				if !ws.alive || ws.draining {
					continue
				}
				for _, at := range ws.outstanding {
					if now.Sub(at) > co.cfg.WorkerTimeout {
						co.markDead(ws, "iteration", errWorkerHung)
						break
					}
				}
			}
			if err := co.serveWaiting(); err != nil {
				return err
			}
		}
		if co.trainableCount() == 0 {
			return fmt.Errorf("rt: all workers lost at iteration %d with %d tokens unreported", co.it, remaining)
		}
	}
	return nil
}

// strayEvent handles traffic from connections that are not (yet)
// workers: join requests and the deaths of would-be joiners.
func (co *Coordinator) strayEvent(ev event) error {
	if ev.err != nil {
		if !co.rejected[ev.conn] {
			co.dropPendingJoin(ev.conn, "join", ev.err)
		}
		return nil
	}
	if co.elastic() && ev.msg.Kind == transport.KindJoin {
		for _, c := range co.pendingJoins {
			if c == ev.conn {
				return nil // duplicate join request
			}
		}
		co.pendingJoins = append(co.pendingJoins, ev.conn)
		co.pendingJoinReq[ev.conn] = ev.msg.GradCodec()
		return nil
	}
	// Anything else from a non-worker connection is a protocol
	// violation: shoot just that connection.
	if !co.rejected[ev.conn] {
		co.rejected[ev.conn] = true
		ev.conn.Close()
		co.recordFault(-1, "join", "protocol", fmt.Sprintf("non-worker connection sent %v", ev.msg.Kind))
	}
	return nil
}

// dropPendingJoin forgets a would-be joiner whose connection died before
// admission.
func (co *Coordinator) dropPendingJoin(c transport.Conn, phase string, cause error) {
	for i, pc := range co.pendingJoins {
		if pc == c {
			co.pendingJoins = append(co.pendingJoins[:i], co.pendingJoins[i+1:]...)
			delete(co.pendingJoinReq, c)
			co.recordFault(-1, phase, transport.Classify(cause).String(), cause.Error())
			return
		}
	}
}

// announceDrain starts a graceful leave: the worker stops receiving
// tokens immediately and its outstanding tokens flow back through the
// same return path as a dead worker's; the departure itself completes at
// the next iteration barrier.
func (co *Coordinator) announceDrain(ws *workerState) {
	if ws.draining {
		return
	}
	ws.draining = true
	co.recordFlight("drain", ws.wid, "", "")
	co.reclaimTokens(ws)
	co.pendingLeaves = append(co.pendingLeaves, ws)
}

// applyMembership runs the iteration-barrier membership protocol: the
// policy sees the completed iteration's live timing signal and decides
// which pending joins, drains and evictions to apply. Joins are applied
// before leaves and evictions, so a join+leave in one barrier window
// never dips the live count below its resting value.
func (co *Coordinator) applyMembership(iterTime time.Duration) {
	if !co.elastic() {
		return
	}
	pendingLeaves := make([]int, 0, len(co.pendingLeaves))
	for _, ws := range co.pendingLeaves {
		pendingLeaves = append(pendingLeaves, ws.wid)
	}
	sort.Ints(pendingLeaves)
	dec := co.cfg.Elastic.AtBarrier(BarrierInfo{
		Iter:           co.it,
		Live:           co.trainableIDs(),
		PendingJoins:   len(co.pendingJoins),
		PendingLeaves:  pendingLeaves,
		IterTime:       iterTime,
		TokensByWorker: co.iterTokens,
	})
	effect := co.it + 1

	admit := dec.AdmitJoins
	if admit > len(co.pendingJoins) {
		admit = len(co.pendingJoins)
	}
	for i := 0; i < admit; i++ {
		conn := co.pendingJoins[0]
		co.pendingJoins = co.pendingJoins[1:]
		wid := len(co.workers)
		ws := &workerState{wid: wid, conn: conn, alive: true, outstanding: map[int]time.Time{}}
		ws.codec = co.negotiate(wid, co.pendingJoinReq[conn])
		delete(co.pendingJoinReq, conn)
		co.workers = append(co.workers, ws)
		co.byConn[conn] = ws
		co.res.TokensByWorker = append(co.res.TokensByWorker, 0)
		// The admission ack carries the assigned wid and the negotiated
		// gradient codec; the next iter-start broadcast delivers the
		// current model snapshot before the joiner's first pull.
		ack := &transport.Message{Kind: transport.KindJoin, WID: wid, Iter: effect}
		ack.SetGradCodec(ws.codec)
		if err := conn.Send(ack); err != nil {
			co.markDead(ws, "join", err)
			continue
		}
		co.recordScale(metrics.ScaleJoin, wid, effect)
	}

	for _, wid := range dec.CompleteLeaves {
		ws := co.takePendingLeave(wid)
		if ws == nil {
			continue
		}
		if ws.alive {
			_ = ws.conn.Send(&transport.Message{Kind: transport.KindDrainAck, WID: wid, Iter: effect})
			ws.alive = false
			ws.departed = true
			ws.conn.Close()
		}
		co.recordScale(metrics.ScaleLeave, wid, effect)
	}

	for _, wid := range dec.Evict {
		if wid < 0 || wid >= len(co.workers) {
			continue
		}
		ws := co.workers[wid]
		if !ws.alive || ws.draining {
			continue
		}
		_ = ws.conn.Send(&transport.Message{Kind: transport.KindShutdown})
		ws.alive = false
		ws.departed = true
		ws.conn.Close()
		co.recordScale(metrics.ScaleEvict, wid, effect)
	}

	// Migration requests: the worker answers with a leave, so the
	// actual departure arrives through the drain path and completes at
	// a later barrier. A send failure here is an ordinary death.
	for _, wid := range dec.Reassign {
		if wid < 0 || wid >= len(co.workers) {
			continue
		}
		ws := co.workers[wid]
		if !ws.alive || ws.draining {
			continue
		}
		if err := ws.conn.Send(&transport.Message{Kind: transport.KindReassign, WID: wid, Iter: effect}); err != nil {
			co.markDead(ws, "reassign", err)
			continue
		}
		co.recordScale(metrics.ScaleReassign, wid, effect)
	}
}

// takePendingLeave removes and returns the pending drain for wid, nil if
// there is none.
func (co *Coordinator) takePendingLeave(wid int) *workerState {
	for i, ws := range co.pendingLeaves {
		if ws.wid == wid {
			co.pendingLeaves = append(co.pendingLeaves[:i], co.pendingLeaves[i+1:]...)
			return ws
		}
	}
	return nil
}

// ownership chooses each token's owner for the coming iteration, nil if
// no worker can train.
func (co *Coordinator) ownership(nTok int) []int {
	if !co.elastic() {
		out := make([]int, nTok)
		for seq := range out {
			out[seq] = seq % co.cfg.Workers
		}
		return out
	}
	live := co.trainableIDs()
	if len(live) == 0 {
		return nil
	}
	if d := co.cfg.Elastic.Distribution(nTok, live); validDistribution(d, nTok, live) {
		return d
	}
	out := make([]int, nTok)
	for seq := range out {
		out[seq] = live[seq%len(live)]
	}
	return out
}

// validDistribution checks a policy-provided ownership vector: right
// length, every owner live.
func validDistribution(d []int, nTok int, live []int) bool {
	if len(d) != nTok {
		return false
	}
	ok := map[int]bool{}
	for _, wid := range live {
		ok[wid] = true
	}
	for _, o := range d {
		if !ok[o] {
			return false
		}
	}
	return true
}

// sendAssign reserves the token for the worker and ships it. The assign
// carries a fresh child span of the iteration span; the worker's compute
// span continues the same trace on the other side of the wire.
func (co *Coordinator) sendAssign(ws *workerState, tok *tokenState) error {
	tok.assigned = true
	tok.span = co.cfg.Spans.StartChild("token-roundtrip", ws.wid, co.iterSpan.Context())
	ws.outstanding[tok.info.Seq] = time.Now()
	co.recordFlight("token.assign", ws.wid, tok.span.Context().TraceHex(),
		"seq="+strconv.Itoa(tok.info.Seq))
	// Every assign restates the negotiated codec, so a worker that
	// registered through a codec-blind transport (which drops the
	// negotiation field) still learns the verdict before its first
	// report.
	am := &transport.Message{
		Kind: transport.KindAssign, Iter: co.it, Token: tok.info, Span: tok.span.Context(),
	}
	am.SetGradCodec(ws.codec)
	return ws.conn.Send(am)
}

// unassign reverts an assignment whose send never reached the worker:
// the token returns to the pool as if never handed out (no Reassigned
// count — nothing was lost in flight).
func (co *Coordinator) unassign(ws *workerState, tok *tokenState) {
	tok.assigned = false
	tok.span = nil // never recorded: the assignment never happened
	delete(ws.outstanding, tok.info.Seq)
}

// reclaimTokens returns a worker's unreported tokens to the pool — the
// shared return path for deaths, hangs and graceful drains.
func (co *Coordinator) reclaimTokens(ws *workerState) {
	for seq := range ws.outstanding {
		if co.tokens != nil && !co.tokens[seq].done {
			co.recordFlight("token.return", ws.wid, co.tokens[seq].span.Context().TraceHex(),
				"seq="+strconv.Itoa(seq))
			co.tokens[seq].assigned = false
			co.tokens[seq].span = nil // round trip never completed
			co.res.Reassigned++
			co.tele.reassigned.Inc()
		}
		delete(ws.outstanding, seq)
	}
}

// markDead declares the worker lost: its connection is closed, its
// unreported tokens return to the pool, and the fault is recorded.
func (co *Coordinator) markDead(ws *workerState, phase string, cause error) {
	if !ws.alive {
		return
	}
	ws.alive = false
	ws.conn.Close()
	co.reclaimTokens(ws)
	class := transport.Classify(cause)
	name := class.String()
	if errors.Is(cause, errWorkerHung) {
		name = transport.ClassTimeout.String()
	}
	if errors.Is(cause, errProtocol) {
		name = "protocol"
	}
	co.recordFault(ws.wid, phase, name, cause.Error())
}

// serveWaiting re-serves parked pull requests after tokens return to
// the pool, in arrival order. A send failure kills that worker and may
// free more tokens, so it loops until a full pass makes no progress.
func (co *Coordinator) serveWaiting() error {
	for {
		progress := false
		pend := co.waiting
		co.waiting = nil
		for _, ws := range pend {
			if !ws.alive || ws.draining {
				continue
			}
			tok := pick(co.tokens, ws.wid)
			if tok == nil {
				co.waiting = append(co.waiting, ws)
				continue
			}
			if err := co.sendAssign(ws, tok); err != nil {
				if !co.faultTolerant() {
					return fmt.Errorf("rt: assign to worker %d: %w", ws.wid, err)
				}
				if co.elastic() {
					co.unassign(ws, tok) // same deferral as the direct path
				} else {
					co.markDead(ws, "iteration", err)
				}
			}
			progress = true
		}
		if !progress {
			return nil
		}
	}
}

// trainableCount reports how many workers can still train tokens (alive
// and not draining).
func (co *Coordinator) trainableCount() int {
	n := 0
	for _, ws := range co.workers {
		if ws.alive && !ws.draining {
			n++
		}
	}
	return n
}

// trainableIDs lists the trainable worker ids, ascending.
func (co *Coordinator) trainableIDs() []int {
	var out []int
	for _, ws := range co.workers {
		if ws.alive && !ws.draining {
			out = append(out, ws.wid)
		}
	}
	return out
}

// recordFault appends a fault event to the result and the optional
// trace.
func (co *Coordinator) recordFault(wid int, phase, class, detail string) {
	at := time.Since(co.start).Seconds()
	co.res.Faults = append(co.res.Faults, metrics.FaultEvent{
		Time: at, Worker: wid, Iter: co.it, Phase: phase, Class: class, Detail: detail,
	})
	co.cfg.Metrics.Counter(MetricFaultsTotal, "class", class).Inc()
	co.cfg.Trace.AddPoint(trace.Fault, wid, at, class+" during "+phase)
	co.recordFlight("death", wid, co.iterSpan.Context().TraceHex(), class+" during "+phase+": "+detail)
}

// recordScale appends a membership change to the result and the
// optional trace. effectIter is the first iteration run under the new
// membership.
func (co *Coordinator) recordScale(kind string, wid, effectIter int) {
	at := time.Since(co.start).Seconds()
	co.res.Scales = append(co.res.Scales, metrics.ScaleEvent{
		Time: at, Iter: effectIter, Worker: wid, Kind: kind,
	})
	co.cfg.Metrics.Counter(MetricScaleTotal, "kind", kind).Inc()
	tk := trace.Join
	if kind != metrics.ScaleJoin {
		tk = trace.Leave
	}
	co.cfg.Trace.AddPoint(tk, wid, at, kind)
	co.recordFlight("scale."+kind, wid, "", "effect_iter="+strconv.Itoa(effectIter))
}

// pick chooses a token for the worker: own shard first (HF own-STB), then
// the unassigned token of the owner with the largest backlog (helper
// prioritization); within an owner, lowest sequence first.
func pick(tokens []*tokenState, wid int) *tokenState {
	backlog := map[int][]*tokenState{}
	for _, t := range tokens {
		if !t.assigned && !t.done {
			backlog[t.info.Owner] = append(backlog[t.info.Owner], t)
		}
	}
	if own := backlog[wid]; len(own) > 0 {
		return own[0]
	}
	best := -1
	for owner, ts := range backlog {
		if best == -1 || len(ts) > len(backlog[best]) || (len(ts) == len(backlog[best]) && owner < best) {
			best = owner
		}
	}
	if best == -1 {
		return nil
	}
	return backlog[best][0]
}
