package rt

import (
	"fmt"

	"fela/internal/minidnn"
	"fela/internal/transport"
)

// Coordinator is the real-time Token Server plus the BSP parameter
// synchronizer. It owns the master copy of the model, seeds one STB per
// worker each iteration, serves pull requests (own shard first, then
// stealing from the largest backlog), and applies the canonical-order
// gradient aggregation that makes the run bit-equal to Sequential.
type Coordinator struct {
	net *minidnn.Network
	cfg Config
}

// NewCoordinator wraps the master network.
func NewCoordinator(net *minidnn.Network, cfg Config) (*Coordinator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Coordinator{net: net, cfg: cfg}, nil
}

type event struct {
	msg  *transport.Message
	err  error
	conn transport.Conn
}

// tokenState tracks one token within an iteration.
type tokenState struct {
	info     transport.TokenInfo
	assigned bool
	done     bool
	grads    [][]float32
	loss     float64
}

// Run drives a full session over the given worker connections. It
// returns after broadcasting shutdown. Connections are not closed.
func (co *Coordinator) Run(conns []transport.Conn) (*Result, error) {
	if len(conns) != co.cfg.Workers {
		return nil, fmt.Errorf("rt: %d connections for %d workers", len(conns), co.cfg.Workers)
	}
	events := make(chan event, 4*len(conns))
	for _, c := range conns {
		c := c
		go func() {
			for {
				m, err := c.Recv()
				events <- event{m, err, c}
				if err != nil {
					return
				}
			}
		}()
	}

	// Registration: every worker introduces itself with its WID, pairing
	// the id with the connection it arrived on.
	byWID := make(map[int]transport.Conn, len(conns))
	for len(byWID) < len(conns) {
		ev := <-events
		if ev.err != nil {
			return nil, fmt.Errorf("rt: worker lost during registration: %w", ev.err)
		}
		if ev.msg.Kind != transport.KindRegister {
			return nil, fmt.Errorf("rt: expected register, got %v", ev.msg.Kind)
		}
		if ev.msg.WID < 0 || ev.msg.WID >= co.cfg.Workers {
			return nil, fmt.Errorf("rt: worker id %d out of range", ev.msg.WID)
		}
		if _, dup := byWID[ev.msg.WID]; dup {
			return nil, fmt.Errorf("rt: duplicate worker id %d", ev.msg.WID)
		}
		byWID[ev.msg.WID] = ev.conn
	}

	res := &Result{TokensByWorker: make([]int, co.cfg.Workers)}
	nTok := co.cfg.tokensPerIter()
	frac := float32(co.cfg.TokenBatch) / float32(co.cfg.TotalBatch)
	vel := zerosLike(co.net.Params())

	for it := 0; it < co.cfg.Iterations; it++ {
		// Seed tokens: token seq's shard owner is seq mod workers, so
		// every worker starts with its own STB (Eq. 2's floor).
		tokens := make([]*tokenState, nTok)
		for seq := 0; seq < nTok; seq++ {
			tokens[seq] = &tokenState{info: transport.TokenInfo{
				ID:    it*nTok + seq,
				Seq:   seq,
				Lo:    seq * co.cfg.TokenBatch,
				Hi:    (seq + 1) * co.cfg.TokenBatch,
				Owner: seq % co.cfg.Workers,
			}}
		}
		params := flatten(co.net.Params())
		start := &transport.Message{Kind: transport.KindIterStart, Iter: it, Params: params}
		for wid := 0; wid < co.cfg.Workers; wid++ {
			if err := byWID[wid].Send(start); err != nil {
				return nil, fmt.Errorf("rt: iter-start to worker %d: %w", wid, err)
			}
		}

		remaining := nTok
		for remaining > 0 {
			ev := <-events
			if ev.err != nil {
				return nil, fmt.Errorf("rt: worker connection failed: %w", ev.err)
			}
			m := ev.msg
			switch m.Kind {
			case transport.KindRequest:
				tok := pick(tokens, m.WID)
				if tok == nil {
					// Nothing left this iteration; the worker waits for
					// the next iter-start (requests are not carried
					// over — a waking straggler re-requests itself).
					continue
				}
				tok.assigned = true
				if tok.info.Owner != m.WID {
					res.Steals++
				}
				if err := byWID[m.WID].Send(&transport.Message{
					Kind: transport.KindAssign, Iter: it, Token: tok.info,
				}); err != nil {
					return nil, fmt.Errorf("rt: assign to worker %d: %w", m.WID, err)
				}
			case transport.KindReport:
				seq := m.Token.Seq
				if seq < 0 || seq >= nTok || tokens[seq].done {
					return nil, fmt.Errorf("rt: bogus report for token seq %d", seq)
				}
				tokens[seq].done = true
				tokens[seq].grads = m.Grads
				tokens[seq].loss = m.Loss
				res.TokensByWorker[m.WID]++
				remaining--
			default:
				return nil, fmt.Errorf("rt: unexpected message %v mid-iteration", m.Kind)
			}
		}

		// Canonical-order aggregation: identical arithmetic to
		// Sequential, so results match bitwise.
		acc := zerosLike(co.net.Params())
		var loss float64
		for _, tok := range tokens {
			loss += tok.loss / float64(nTok)
			for i := range acc {
				if len(tok.grads[i]) != acc[i].Len() {
					return nil, fmt.Errorf("rt: gradient %d size mismatch", i)
				}
				for j, g := range tok.grads[i] {
					acc[i].Data[j] += frac * g
				}
			}
		}
		applyUpdate(co.net, vel, acc, co.cfg)
		res.Losses = append(res.Losses, loss)
	}

	for wid := 0; wid < co.cfg.Workers; wid++ {
		if err := byWID[wid].Send(&transport.Message{Kind: transport.KindShutdown}); err != nil {
			return nil, fmt.Errorf("rt: shutdown to worker %d: %w", wid, err)
		}
	}
	res.Params = co.net.CloneParams()
	return res, nil
}

// pick chooses a token for the worker: own shard first (HF own-STB), then
// the unassigned token of the owner with the largest backlog (helper
// prioritization); within an owner, lowest sequence first.
func pick(tokens []*tokenState, wid int) *tokenState {
	backlog := map[int][]*tokenState{}
	for _, t := range tokens {
		if !t.assigned {
			backlog[t.info.Owner] = append(backlog[t.info.Owner], t)
		}
	}
	if own := backlog[wid]; len(own) > 0 {
		return own[0]
	}
	best := -1
	for owner, ts := range backlog {
		if best == -1 || len(ts) > len(backlog[best]) || (len(ts) == len(backlog[best]) && owner < best) {
			best = owner
		}
	}
	if best == -1 {
		return nil
	}
	return backlog[best][0]
}
