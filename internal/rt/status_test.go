package rt

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"fela/internal/metrics"
	"fela/internal/minidnn"
	"fela/internal/obs"
	"fela/internal/transport"
)

// TestStatusJSONRoundTrip: the /statusz payload must survive
// marshal→unmarshal intact — it is the wire contract for dashboards and
// the e2e test's scrape assertions.
func TestStatusJSONRoundTrip(t *testing.T) {
	in := Status{
		Role:           "coordinator",
		Iter:           7,
		Iterations:     12,
		LiveWorkers:    []int{0, 2, 5},
		Draining:       []int{2},
		PendingJoins:   1,
		TokensByWorker: map[int]int{0: 40, 2: 31, 5: 25},
		TokenRate:      map[int]float64{0: 123.5, 2: 88.25, 5: 60},
		StragglerScore: map[int]float64{0: 0, 2: 0.285, 5: 0.514},
		Steals:         3,
		Reassigned:     1,
		RecentFaults:   []metrics.FaultEvent{{Time: 3.5, Worker: 9, Iter: 4, Phase: "iteration", Class: "timeout"}},
		RecentScales:   []metrics.ScaleEvent{{Time: 4.5, Iter: 5, Worker: 5, Kind: "join"}},
		UptimeSeconds:  41.5,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Status
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed the snapshot:\n in: %+v\nout: %+v", in, out)
	}
}

func TestWorkerStatusJSONRoundTrip(t *testing.T) {
	in := WorkerStatus{
		Role: "worker", WID: 3, Iter: 9, TokensTrained: 72,
		LastComputeSeconds: 0.0025, LastFetchSeconds: 0.0004,
		Draining: true, UptimeSeconds: 12.75,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out WorkerStatus
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed the snapshot:\n in: %+v\nout: %+v", in, out)
	}
}

// TestSessionTelemetry runs a real in-memory session with telemetry on
// and checks the registry, the status snapshots, and the span buffer all
// reflect what actually happened.
func TestSessionTelemetry(t *testing.T) {
	cfg := baseCfg()
	cfg.Metrics = obs.NewRegistry()
	cfg.Spans = obs.NewTracer("test")

	co, err := NewCoordinator(mlp(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if co.Status() == nil {
		t.Fatal("coordinator status must be published from construction")
	}

	serverConns := make([]transport.Conn, cfg.Workers)
	workers := make([]*Worker, cfg.Workers)
	errs := make(chan error, cfg.Workers)
	for wid := 0; wid < cfg.Workers; wid++ {
		server, client := transport.Pair()
		serverConns[wid] = server
		w := NewWorker(wid, mlp(), blobs(), cfg)
		workers[wid] = w
		go func() { errs <- w.Run(client) }()
	}
	res, err := co.Run(serverConns)
	if err != nil {
		t.Fatal(err)
	}
	for range workers {
		if werr := <-errs; werr != nil {
			t.Fatal(werr)
		}
	}

	tokens := cfg.Iterations * (cfg.TotalBatch / cfg.TokenBatch)

	// Registry: token counters across workers sum to the session total.
	var counted int64
	for _, v := range cfg.Metrics.CounterValues(MetricTokensTotal) {
		counted += v
	}
	if counted != int64(tokens) {
		t.Errorf("%s sums to %d, want %d", MetricTokensTotal, counted, tokens)
	}
	if got := cfg.Metrics.Histogram(MetricTokenSeconds, nil).Count(); got != int64(tokens) {
		t.Errorf("%s count = %d, want %d", MetricTokenSeconds, got, tokens)
	}
	if got := cfg.Metrics.Histogram(MetricIterSeconds, nil).Count(); got != int64(cfg.Iterations) {
		t.Errorf("%s count = %d, want %d", MetricIterSeconds, got, cfg.Iterations)
	}
	if rates := cfg.Metrics.GaugeValues(MetricWorkerRate); len(rates) != cfg.Workers {
		t.Errorf("%s has %d series, want %d: %v", MetricWorkerRate, len(rates), cfg.Workers, rates)
	}
	// Transport counters saw traffic in both directions.
	var bytes int64
	for _, v := range cfg.Metrics.CounterValues(transport.MetricBytes) {
		bytes += v
	}
	if bytes == 0 {
		t.Errorf("%s recorded no traffic", transport.MetricBytes)
	}

	// Coordinator snapshot after the run.
	st := co.Status()
	if st.Iter != cfg.Iterations-1 || st.Iterations != cfg.Iterations {
		t.Errorf("status iteration = %d/%d, want %d/%d", st.Iter, st.Iterations, cfg.Iterations-1, cfg.Iterations)
	}
	if len(st.LiveWorkers) != cfg.Workers {
		t.Errorf("status live workers = %v, want %d ids", st.LiveWorkers, cfg.Workers)
	}
	var statusTokens int
	for _, n := range st.TokensByWorker {
		statusTokens += n
	}
	if statusTokens != tokens {
		t.Errorf("status tokens = %d, want %d", statusTokens, tokens)
	}
	if st.Steals != res.Steals {
		t.Errorf("status steals = %d, result says %d", st.Steals, res.Steals)
	}
	if st.UptimeSeconds <= 0 {
		t.Error("status uptime must be positive")
	}

	// Worker snapshots.
	for wid, w := range workers {
		ws := w.Status()
		if ws == nil {
			t.Fatalf("worker %d has no status", wid)
		}
		if ws.WID != wid || ws.Iter != cfg.Iterations-1 {
			t.Errorf("worker %d status = %+v", wid, ws)
		}
		if ws.TokensTrained != st.TokensByWorker[wid] {
			t.Errorf("worker %d trained %d tokens, coordinator saw %d", wid, ws.TokensTrained, st.TokensByWorker[wid])
		}
	}

	// Spans: every iteration a root, every token a round-trip child, and
	// the workers' compute spans joined those traces via the wire context.
	byName := map[string]int{}
	iterTraces := map[uint64]bool{}
	for _, ev := range cfg.Spans.Events() {
		byName[ev.Name]++
		if ev.Name == "iteration" {
			iterTraces[ev.Ctx.TraceID] = true
		}
	}
	if byName["iteration"] != cfg.Iterations {
		t.Errorf("iteration spans = %d, want %d", byName["iteration"], cfg.Iterations)
	}
	if byName["token-roundtrip"] != tokens {
		t.Errorf("token-roundtrip spans = %d, want %d", byName["token-roundtrip"], tokens)
	}
	if byName["compute"] != tokens {
		t.Errorf("compute spans = %d, want %d", byName["compute"], tokens)
	}
	for _, ev := range cfg.Spans.Events() {
		if ev.Name == "compute" && !iterTraces[ev.Ctx.TraceID] {
			t.Fatalf("compute span %016x not part of any iteration trace", ev.Ctx.TraceID)
		}
	}

	// Telemetry must not perturb training.
	seq, err := Sequential(mlp(), blobs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !minidnn.ParamsEqual(seq.Params, res.Params) {
		t.Fatal("instrumented run diverged from sequential reference")
	}
}

// TestTelemetryOffIsHarmless: the default config (no registry, no
// tracer) must run exactly as before — the nil-safe no-op path.
func TestTelemetryOffIsHarmless(t *testing.T) {
	cfg := baseCfg()
	cfg.Iterations = 2
	res, err := Train(mlp, blobs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Sequential(mlp(), blobs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !minidnn.ParamsEqual(seq.Params, res.Params) {
		t.Fatal("uninstrumented run diverged from sequential reference")
	}
}

// TestStatusReflectsStraggler: with one delayed worker the published
// straggler scores must rank the slow worker strictly above the fast
// ones — the live Eq. 4 signal the re-tuner consumes.
func TestStatusReflectsStraggler(t *testing.T) {
	cfg := baseCfg()
	cfg.Iterations = 8
	cfg.Metrics = obs.NewRegistry()
	cfg.Delay = func(iter, wid int) time.Duration {
		if wid == 0 {
			return 5 * time.Millisecond
		}
		return 0
	}

	co, err := NewCoordinator(mlp(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	serverConns := make([]transport.Conn, cfg.Workers)
	errs := make(chan error, cfg.Workers)
	for wid := 0; wid < cfg.Workers; wid++ {
		server, client := transport.Pair()
		serverConns[wid] = server
		w := NewWorker(wid, mlp(), blobs(), cfg)
		go func() { errs <- w.Run(client) }()
	}
	if _, err := co.Run(serverConns); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Workers; i++ {
		if werr := <-errs; werr != nil {
			t.Fatal(werr)
		}
	}

	st := co.Status()
	if len(st.StragglerScore) != cfg.Workers || len(st.TokenRate) != cfg.Workers {
		t.Fatalf("rates %v scores %v, want %d entries each", st.TokenRate, st.StragglerScore, cfg.Workers)
	}
	// The delayed worker must lag the field; the fastest scores 0 by
	// construction. (Other workers may tie the delayed one at score ~1
	// when stealing starves them, so only worker 0's lag is asserted.)
	if st.StragglerScore[0] <= 0 {
		t.Errorf("delayed worker 0 score = %v, want > 0 (scores %v)", st.StragglerScore[0], st.StragglerScore)
	}
	var fastest bool
	for _, s := range st.StragglerScore {
		if s == 0 {
			fastest = true
		}
	}
	if !fastest {
		t.Errorf("no worker scored 0: %v", st.StragglerScore)
	}
	var max float64
	for _, r := range st.TokenRate {
		if r > max {
			max = r
		}
	}
	if st.TokenRate[0] >= max {
		t.Errorf("delayed worker 0 rate %v is not below the max %v", st.TokenRate[0], max)
	}
}
