package rt

// Coordinator-kill chaos: the durability counterpart of the worker
// chaos suite. Phase 1 runs a session whose coordinator checkpoints
// into a durable.Plane and "crashes" — every connection severed at a
// scripted protocol state, Run aborting like a killed process. Phase 2
// opens the same durable directory, loads the latest checkpoint, and
// resumes with fresh workers. Whatever the kill point, the resumed run
// must end bit-identical to an uninterrupted Sequential reference —
// the canonical-order aggregation recomputes the uncheckpointed tail
// exactly.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fela/internal/durable"
	"fela/internal/minidnn"
	"fela/internal/transport"
)

// errCoordinatorKilled marks every conn operation after the scripted
// kill fires.
var errCoordinatorKilled = errors.New("coordinator killed")

// killPoint scripts where phase 1 dies.
type killPoint struct {
	name string
	// sendNth > 0 trips the kill on the sendNth-th coordinator-side
	// send of onSendKind (1-based, across all conns); recvNth likewise
	// for receives of onRecvKind. KindRegister is 0, so the kind fields
	// only count when their nth guard is set.
	onSendKind, onRecvKind transport.Kind
	sendNth, recvNth       int
	// preCkpt/postCkpt trip the kill inside the checkpoint hook at
	// iteration ckptIter: before anything is written, between the
	// checkpoint commit and the ledger barrier entry, or after both.
	preCkpt, midCkpt, postCkpt bool
	ckptIter                   int
}

// killCtl is the shared crash switch: tripping it severs every
// coordinator-side connection at once, so phase 1 dies the way a
// killed process does — everywhere, mid-protocol.
type killCtl struct {
	killed atomic.Bool
	mu     sync.Mutex
	conns  []transport.Conn
	sends  map[transport.Kind]*atomic.Int64
	recvs  map[transport.Kind]*atomic.Int64
	point  killPoint
}

func newKillCtl(point killPoint) *killCtl {
	ctl := &killCtl{point: point,
		sends: map[transport.Kind]*atomic.Int64{},
		recvs: map[transport.Kind]*atomic.Int64{}}
	for _, k := range transport.Kinds() {
		ctl.sends[k] = &atomic.Int64{}
		ctl.recvs[k] = &atomic.Int64{}
	}
	return ctl
}

func (ctl *killCtl) trip() {
	if ctl.killed.Swap(true) {
		return
	}
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	for _, c := range ctl.conns {
		c.Close()
	}
}

// killConn wraps one coordinator-side connection with the shared
// crash switch.
type killConn struct {
	inner transport.Conn
	ctl   *killCtl
}

func (kc *killConn) Send(m *transport.Message) error {
	ctl := kc.ctl
	if ctl.killed.Load() {
		return errCoordinatorKilled
	}
	if ctl.point.sendNth > 0 && m.Kind == ctl.point.onSendKind &&
		ctl.sends[m.Kind].Add(1) == int64(ctl.point.sendNth) {
		ctl.trip()
		return errCoordinatorKilled
	}
	return kc.inner.Send(m)
}

func (kc *killConn) Recv() (*transport.Message, error) {
	ctl := kc.ctl
	m, err := kc.inner.Recv()
	if ctl.killed.Load() {
		return nil, errCoordinatorKilled
	}
	if err != nil {
		return nil, err
	}
	if ctl.point.recvNth > 0 && m.Kind == ctl.point.onRecvKind &&
		ctl.recvs[m.Kind].Add(1) == int64(ctl.point.recvNth) {
		ctl.trip()
		return nil, errCoordinatorKilled
	}
	return m, nil
}

func (kc *killConn) Close() error { return kc.inner.Close() }

// durableCfg is the session the suite replays: momentum so the
// velocity state matters to the resume, CheckpointEvery 2 so kills
// land both before and after commits.
func durableCfg() Config {
	cfg := baseCfg()
	cfg.Momentum = 0.9
	cfg.CheckpointEvery = 2
	return cfg
}

// ckptHook wires Config.Checkpoint to a durable plane (store commit,
// then the ledger's barrier entry — the DESIGN.md §14 ordering) with
// scripted kills inside the commit window.
func ckptHook(plane *durable.Plane, ctl *killCtl) func(int, [][]float32, [][]float32, []float64) error {
	return func(iter int, params, vel [][]float32, losses []float64) error {
		if ctl != nil && ctl.point.preCkpt && iter == ctl.point.ckptIter {
			ctl.trip()
			return errCoordinatorKilled
		}
		if err := plane.Store.Save(&durable.Checkpoint{
			JobID: 0, Iter: iter, Params: params, Vel: vel, Losses: losses,
		}); err != nil {
			return err
		}
		if ctl != nil && ctl.point.midCkpt && iter == ctl.point.ckptIter {
			ctl.trip()
			return errCoordinatorKilled
		}
		if _, err := plane.Ledger.Append(durable.Entry{Op: durable.OpBarrier, WID: -1, Iter: iter}); err != nil {
			return err
		}
		if ctl != nil && ctl.point.postCkpt && iter == ctl.point.ckptIter {
			ctl.trip()
			return errCoordinatorKilled
		}
		return nil
	}
}

// runPhase runs one coordinator over fresh in-process workers. ctl
// non-nil scripts the phase-1 kill; resume non-nil restores phase 2.
func runPhase(t *testing.T, cfg Config, plane *durable.Plane, ctl *killCtl, resume *Resume) (*Result, error) {
	t.Helper()
	cfg.Checkpoint = ckptHook(plane, ctl)
	cfg.Resume = resume
	serverConns := make([]transport.Conn, cfg.Workers)
	for wid := 0; wid < cfg.Workers; wid++ {
		server, client := transport.Pair()
		if ctl != nil {
			ctl.mu.Lock()
			ctl.conns = append(ctl.conns, server)
			ctl.mu.Unlock()
			serverConns[wid] = &killConn{inner: server, ctl: ctl}
		} else {
			serverConns[wid] = server
		}
		w := NewWorker(wid, mlp(), blobs(), cfg)
		go func() { _ = w.Run(client) }()
	}
	co, err := NewCoordinator(mlp(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := co.Run(serverConns)
		done <- outcome{res, err}
	}()
	select {
	case out := <-done:
		return out.res, out.err
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator hung")
		return nil, nil
	}
}

// resumeFrom builds the phase-2 Resume from the durable directory, nil
// when the kill predated the first checkpoint commit.
func resumeFrom(t *testing.T, plane *durable.Plane) *Resume {
	t.Helper()
	ck, err := plane.Store.Load(0)
	if err != nil {
		t.Fatalf("load checkpoint: %v", err)
	}
	if ck == nil {
		return nil
	}
	return &Resume{Iter: ck.Iter, Params: ck.Params, Vel: ck.Vel, Losses: ck.Losses}
}

// TestChaosCoordinatorKillEveryProtocolState kills the coordinator at
// every protocol state — registration, iter-start broadcast, token
// assignment, report receipt, inside the checkpoint commit window, and
// during shutdown — and asserts the restarted coordinator resumes
// bit-identical to an uninterrupted run.
func TestChaosCoordinatorKillEveryProtocolState(t *testing.T) {
	// With 4 workers, 8 tokens and CheckpointEvery 2, iteration i sends
	// its iter-starts at nth 4i+1..4i+4; checkpoints commit at
	// iterations 1, 3, 5.
	points := []killPoint{
		{name: "post-register", onSendKind: transport.KindIterStart, sendNth: 1},
		{name: "mid-iter-start-broadcast", onSendKind: transport.KindIterStart, sendNth: 2},
		{name: "mid-broadcast-after-checkpoint", onSendKind: transport.KindIterStart, sendNth: 10},
		{name: "post-assign", onSendKind: transport.KindAssign, sendNth: 11},
		{name: "mid-report", onRecvKind: transport.KindReport, recvNth: 13},
		{name: "pre-checkpoint", preCkpt: true, ckptIter: 3},
		{name: "between-checkpoint-and-ledger", midCkpt: true, ckptIter: 3},
		{name: "post-checkpoint", postCkpt: true, ckptIter: 3},
		{name: "post-final-checkpoint", postCkpt: true, ckptIter: 5},
		{name: "mid-shutdown-broadcast", onSendKind: transport.KindShutdown, sendNth: 2},
	}
	cfg := durableCfg()
	seq, err := Sequential(mlp(), blobs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, point := range points {
		t.Run(point.name, func(t *testing.T) {
			t.Parallel()
			dumpFlightOnFailure(t)
			dir := t.TempDir()

			plane, err := durable.Open(dir, durable.Options{})
			if err != nil {
				t.Fatal(err)
			}
			ctl := newKillCtl(point)
			res, runErr := runPhase(t, cfg, plane, ctl, nil)
			killed := ctl.killed.Load()
			if !killed {
				t.Fatalf("kill point %q never fired (err %v)", point.name, runErr)
			}
			if runErr == nil && point.name != "mid-shutdown-broadcast" {
				t.Fatalf("killed coordinator reported success: %+v", res)
			}
			plane.Close() // the dying process releases its lock

			// Restart: replay the ledger, load the latest checkpoint,
			// resume with a fresh worker fleet.
			plane2, err := durable.Open(dir, durable.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer plane2.Close()
			resume := resumeFrom(t, plane2)
			if resume != nil {
				// The ledger's barrier history must never be ahead of the
				// checkpoint store (commit ordering: store first).
				for _, e := range plane2.Entries {
					if e.Op == durable.OpBarrier && e.Iter > resume.Iter {
						t.Fatalf("ledger barrier at iter %d ahead of checkpoint iter %d", e.Iter, resume.Iter)
					}
				}
			}
			res2, err := runPhase(t, cfg, plane2, nil, resume)
			if err != nil {
				t.Fatalf("resumed run failed: %v", err)
			}
			if !minidnn.ParamsEqual(seq.Params, res2.Params) {
				t.Fatal("resumed run diverged from uninterrupted sequential reference")
			}
			if len(res2.Losses) != cfg.Iterations {
				t.Fatalf("resumed run reports %d losses, want %d", len(res2.Losses), cfg.Iterations)
			}
			for i, l := range res2.Losses {
				if l != seq.Losses[i] {
					t.Fatalf("loss history diverged at iteration %d: %v vs %v", i, l, seq.Losses[i])
				}
			}
		})
	}
}

// TestChaosKillAtEveryIteration sweeps the kill across every iteration
// boundary region (first assign of each iteration) — a denser sweep of
// the same invariant, so no interval between checkpoints escapes.
func TestChaosKillAtEveryIteration(t *testing.T) {
	cfg := durableCfg()
	seq, err := Sequential(mlp(), blobs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	nTok := cfg.TotalBatch / cfg.TokenBatch
	for it := 0; it < cfg.Iterations; it++ {
		t.Run(fmt.Sprintf("kill-during-iter-%d", it), func(t *testing.T) {
			t.Parallel()
			dumpFlightOnFailure(t)
			dir := t.TempDir()
			plane, err := durable.Open(dir, durable.Options{})
			if err != nil {
				t.Fatal(err)
			}
			ctl := newKillCtl(killPoint{onSendKind: transport.KindAssign, sendNth: it*nTok + 2})
			if _, runErr := runPhase(t, cfg, plane, ctl, nil); runErr == nil {
				t.Fatal("killed coordinator reported success")
			}
			plane.Close()

			plane2, err := durable.Open(dir, durable.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer plane2.Close()
			res2, err := runPhase(t, cfg, plane2, nil, resumeFrom(t, plane2))
			if err != nil {
				t.Fatalf("resumed run failed: %v", err)
			}
			if !minidnn.ParamsEqual(seq.Params, res2.Params) {
				t.Fatal("resumed run diverged from uninterrupted sequential reference")
			}
		})
	}
}
