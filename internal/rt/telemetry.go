package rt

import (
	"sort"
	"strconv"
	"time"

	"fela/internal/obs"
)

// Coordinator-side metric names. Worker-side names live in worker.go.
const (
	// MetricTokenSeconds is the assign→report round-trip per token: the
	// live analog of the paper's per-token compute+fetch time.
	MetricTokenSeconds = "fela_rt_token_seconds"
	// MetricIterSeconds is the wall-clock duration of one BSP iteration
	// (the denominator of Eq. 3's live estimate).
	MetricIterSeconds = "fela_rt_iter_seconds"
	// MetricBarrierSeconds is the time spent between the last token
	// report and the next iteration's seeding: canonical-order
	// aggregation, the optimizer step and the membership barrier.
	MetricBarrierSeconds = "fela_rt_barrier_seconds"
	// MetricLiveWorkers gauges the trainable worker count.
	MetricLiveWorkers = "fela_rt_live_workers"
	// MetricIteration gauges the most recently completed iteration.
	MetricIteration = "fela_rt_iteration"
	// MetricTokensTotal counts reported tokens per worker.
	MetricTokensTotal = "fela_rt_tokens_total"
	// MetricStealsTotal counts tokens trained away from their owner.
	MetricStealsTotal = "fela_rt_steals_total"
	// MetricReassignedTotal counts assignments revoked from dead, hung
	// or draining workers.
	MetricReassignedTotal = "fela_rt_reassigned_total"
	// MetricFaultsTotal counts detected faults by classification.
	MetricFaultsTotal = "fela_rt_faults_total"
	// MetricScaleTotal counts applied membership changes by kind.
	MetricScaleTotal = "fela_rt_scale_total"
	// MetricWorkerRate gauges each worker's EWMA token rate (tokens/s).
	MetricWorkerRate = "fela_rt_worker_rate"
	// MetricStragglerScore gauges each worker's relative lag:
	// 1 − rate/max(rate) over the live set, 0 for the fastest worker.
	MetricStragglerScore = "fela_rt_straggler_score"
)

// rateAlpha is the EWMA smoothing for live per-worker token rates,
// matching elastic.RetuneOptions' default.
const rateAlpha = 0.5

// coTelemetry bundles the coordinator's hot-path instruments so the
// event loop never does a registry lookup per message. Built once in
// NewCoordinator; every instrument is nil when telemetry is off, and
// all instrument methods are nil-safe no-ops.
type coTelemetry struct {
	tokenLat   *obs.Histogram
	iterTime   *obs.Histogram
	barrier    *obs.Histogram
	live       *obs.Gauge
	iteration  *obs.Gauge
	steals     *obs.Counter
	reassigned *obs.Counter
}

func newCoTelemetry(reg *obs.Registry) coTelemetry {
	reg.Help(MetricTokenSeconds, "Token assign-to-report round-trip latency in seconds.")
	reg.Help(MetricIterSeconds, "Wall-clock duration of one BSP iteration in seconds.")
	reg.Help(MetricBarrierSeconds, "Aggregation + membership-barrier time between iterations in seconds.")
	reg.Help(MetricLiveWorkers, "Trainable (alive, non-draining) worker count.")
	reg.Help(MetricIteration, "Most recently completed iteration.")
	reg.Help(MetricTokensTotal, "Tokens reported, by worker id.")
	reg.Help(MetricStealsTotal, "Tokens trained away from their shard owner.")
	reg.Help(MetricReassignedTotal, "Token assignments revoked from dead, hung or draining workers.")
	reg.Help(MetricFaultsTotal, "Detected worker faults, by classification.")
	reg.Help(MetricScaleTotal, "Applied membership changes, by kind.")
	reg.Help(MetricWorkerRate, "Per-worker EWMA token rate in tokens/second.")
	reg.Help(MetricStragglerScore, "Per-worker relative lag: 1 - rate/max(rate); 0 is the fastest worker.")
	return coTelemetry{
		tokenLat:   reg.Histogram(MetricTokenSeconds, nil),
		iterTime:   reg.Histogram(MetricIterSeconds, nil),
		barrier:    reg.Histogram(MetricBarrierSeconds, nil),
		live:       reg.Gauge(MetricLiveWorkers),
		iteration:  reg.Gauge(MetricIteration),
		steals:     reg.Counter(MetricStealsTotal),
		reassigned: reg.Counter(MetricReassignedTotal),
	}
}

// observeIteration feeds one completed iteration into the live signals:
// the iteration-time histogram, per-worker EWMA rates and straggler
// scores (Eq. 3/4's live inputs), and the membership gauges.
func (co *Coordinator) observeIteration(iterTime time.Duration) {
	// The iteration root span is still open here; its trace id becomes
	// the histogram exemplar so tail iterations are traceable.
	co.tele.iterTime.ObserveExemplar(iterTime.Seconds(), co.iterSpan.Context())
	co.tele.iteration.Set(float64(co.it))
	co.tele.live.Set(float64(co.trainableCount()))
	secs := iterTime.Seconds()
	if secs <= 0 {
		return
	}
	// Update every live worker's EWMA, including workers that reported
	// nothing this iteration (stalled or starved by stealing): a zero
	// observation is a real signal, and the re-tuner needs a complete
	// per-worker feed.
	live := map[int]bool{}
	var max float64
	for _, ws := range co.workers {
		if !ws.alive || ws.draining {
			continue
		}
		live[ws.wid] = true
		rate := float64(co.iterTokens[ws.wid]) / secs
		if old, ok := co.rates[ws.wid]; ok {
			rate = (1-rateAlpha)*old + rateAlpha*rate
		}
		co.rates[ws.wid] = rate
		if rate > max {
			max = rate
		}
	}
	// Drop departed workers so stale rates never skew max or /statusz.
	for wid := range co.rates {
		if !live[wid] {
			delete(co.rates, wid)
		}
	}
	for _, ws := range co.workers {
		if !ws.alive || ws.draining {
			continue
		}
		rate := co.rates[ws.wid]
		co.cfg.Metrics.Gauge(MetricWorkerRate, "worker", strconv.Itoa(ws.wid)).Set(rate)
		score := 0.0
		if max > 0 {
			score = 1 - rate/max
		}
		co.cfg.Metrics.Gauge(MetricStragglerScore, "worker", strconv.Itoa(ws.wid)).Set(score)
	}
}

// publishStatus snapshots the session for /statusz readers. Called from
// the coordinator goroutine only; readers load the pointer atomically.
func (co *Coordinator) publishStatus() {
	// After the training loop the iteration variable has overshot by
	// one; clamp so Iter always names the last completed iteration.
	iter := co.it
	if iter >= co.cfg.Iterations {
		iter = co.cfg.Iterations - 1
	}
	st := &Status{
		Role:           "coordinator",
		Iter:           iter,
		Iterations:     co.cfg.Iterations,
		LiveWorkers:    co.trainableIDs(),
		PendingJoins:   len(co.pendingJoins),
		TokensByWorker: map[int]int{},
		Steals:         co.res.Steals,
		Reassigned:     co.res.Reassigned,
		RecentFaults:   tail(co.res.Faults, statusHistory),
		RecentScales:   tail(co.res.Scales, statusHistory),
		UptimeSeconds:  time.Since(co.start).Seconds(),
	}
	if st.LiveWorkers == nil {
		st.LiveWorkers = []int{}
	}
	for wid, n := range co.res.TokensByWorker {
		if n > 0 {
			st.TokensByWorker[wid] = n
		}
	}
	for _, ws := range co.workers {
		if ws.alive && ws.draining {
			st.Draining = append(st.Draining, ws.wid)
		}
	}
	sort.Ints(st.Draining)
	if len(co.rates) > 0 {
		st.TokenRate = map[int]float64{}
		st.StragglerScore = map[int]float64{}
		var max float64
		for _, r := range co.rates {
			if r > max {
				max = r
			}
		}
		for wid, r := range co.rates {
			st.TokenRate[wid] = r
			if max > 0 {
				st.StragglerScore[wid] = 1 - r/max
			}
		}
	}
	co.status.Store(st)
}

// Status returns the most recently published session snapshot, nil
// before registration completes. Safe to call from any goroutine (the
// /statusz handler's feed).
func (co *Coordinator) Status() *Status {
	return co.status.Load()
}

// StatusAny adapts Status to the obs.Handler statusFn signature without
// handing out a typed nil.
func (co *Coordinator) StatusAny() any {
	if st := co.Status(); st != nil {
		return st
	}
	return nil
}
