// Package rt is Fela's real-time execution engine: a token-scheduled BSP
// trainer running real gradient computation (internal/minidnn) across
// goroutine or TCP workers (internal/transport).
//
// It implements the paper's worker-pull loop (§III-A) at the data-token
// level: every token trains the full model on one shard of the global
// batch, workers consume their own shard's tokens first and steal from
// the most-backlogged peer once their own run dry (the HF policy's
// own-STB-first + helper behaviour), and a straggling worker simply
// requests fewer tokens — reactive mitigation with zero algorithmic
// change.
//
// The headline property this engine demonstrates is the paper's
// "algorithm reproducibility" column (Table II): the coordinator
// accumulates token gradients in canonical token order, so training is
// bit-identical to sequential large-batch SGD no matter how many workers
// participate, how tokens get distributed, or which workers straggle —
// see Sequential and the equivalence tests.
//
// Scope note: the simulator (internal/felaengine) models the full hybrid
// scheme (multi-level sub-model tokens, CTD, decentralized all-reduce);
// this real-execution engine centralizes parameter synchronization at
// the coordinator for verifiability and runs level-0 (data) tokens. The
// per-sub-model backward interleaving needs the paper's virtual-layer
// hooks inside the training framework ([15]) and has no counterpart in a
// from-scratch engine.
package rt

import (
	"fmt"
	"time"

	"fela/internal/metrics"
	"fela/internal/minidnn"
	"fela/internal/obs"
	"fela/internal/tensor"
	"fela/internal/trace"
	"fela/internal/transport"
)

// Config describes a real-time training session.
type Config struct {
	// Workers is the number of workers expected to register.
	Workers int
	// TotalBatch is the global batch size per iteration; sample rows
	// [0, TotalBatch) of the dataset are consumed each iteration.
	TotalBatch int
	// TokenBatch is the per-token batch size (the level-0 parallelism
	// degree). Must divide TotalBatch.
	TokenBatch int
	// Iterations is the number of BSP iterations.
	Iterations int
	// LR is the SGD learning rate.
	LR float32
	// Momentum is the optional SGD momentum coefficient (0 = plain
	// SGD). The coordinator owns the velocity state, so momentum does
	// not affect the bitwise-reproducibility guarantee.
	Momentum float32
	// Delay optionally injects straggler sleeps: the worker sleeps
	// Delay(iter, wid) at the start of each iteration before requesting
	// tokens (the §V-C2 methodology, wall-clock here).
	Delay func(iter, wid int) time.Duration
	// TokenDelay optionally injects a per-token compute cost: the worker
	// sleeps TokenDelay(iter, wid) before training each assigned token.
	// Sleeps overlap across workers, so it models a heavier model whose
	// compute parallelizes with the worker count even on small machines
	// (the simulated-testbed methodology). Sequential ignores it; like
	// Delay it cannot change the training result.
	TokenDelay func(iter, wid int) time.Duration
	// Drain optionally scripts graceful leaves: at the start of each
	// iteration, a worker for which Drain(iter, wid) is true announces a
	// leave instead of pulling tokens and waits for the coordinator's
	// drain ack (granted at the next iteration barrier) before exiting.
	// Like Delay, Sequential ignores it, so draining cannot change the
	// training result.
	Drain func(iter, wid int) bool
	// Elastic, when non-nil, turns on live membership: new workers may
	// join mid-session (Coordinator.Admit), workers may leave gracefully
	// via the drain protocol, and the policy may evict workers. All
	// membership changes are applied at iteration barriers and recorded
	// as Result.Scales; the policy's Distribution hook re-tunes token
	// ownership for the live worker set.
	Elastic MembershipPolicy
	// Compress names the gradient-compression codec this side of the
	// session is willing to use on the report path (transport package:
	// exact, fp16, int8, topk). On a worker it is the codec requested at
	// registration; on the coordinator it is the codec permitted. The
	// negotiated codec is the request when it matches the permit and
	// exact otherwise, so a mixed fleet silently degrades to lossless
	// rather than failing. Only the Grads section of reports is ever
	// lossy — parameter broadcasts stay bit-exact — and the default
	// (CompressExact) preserves the bit-identical-to-Sequential
	// guarantee end to end.
	Compress transport.Compression
	// WorkerTimeout, when positive, enables fault tolerance: a worker
	// that has not registered, or has sat on an assigned token, for
	// longer than this is declared dead; its tokens return to the pool
	// and surviving workers finish the iteration. Zero keeps the
	// strict mode where any worker fault aborts the session. The
	// timeout must comfortably exceed the slowest single-token compute
	// time (plus any injected Delay), or healthy stragglers will be
	// shot.
	WorkerTimeout time.Duration
	// Trace, when set, receives a Fault point event per detected
	// worker fault (wall-clock seconds since session start).
	Trace *trace.Trace
	// Metrics, when set, receives live telemetry from this side of the
	// session (internal/obs): token latency histograms, per-worker rate
	// EWMAs and straggler scores on the coordinator; compute/fetch
	// timings on workers; per-kind transport traffic on both. Nil keeps
	// the no-op fast path.
	Metrics *obs.Registry
	// Spans, when set, records distributed spans (internal/obs). Trace
	// contexts propagate inside protocol messages, so coordinator and
	// worker spans of one token round-trip share a trace id.
	Spans *obs.Tracer
	// Flight, when set, receives the session's protocol events (token
	// assign/return, death verdicts, barriers, membership changes). Nil
	// records into the process-global flight recorder — recording is
	// always on; this field exists so tests can isolate a ring.
	Flight *obs.FlightRecorder
	// Checkpoint, when set, is called at checkpoint barriers — right
	// after the optimizer step of iteration iter, with copies of the
	// post-step parameters, velocity and the full loss history — and
	// must durably commit them before returning (internal/durable). A
	// returned error aborts the session: training past an unwritable
	// checkpoint would sacrifice the resume guarantee silently.
	Checkpoint func(iter int, params, vel [][]float32, losses []float64) error
	// CheckpointEvery is the checkpoint interval in iterations: every
	// CheckpointEvery-th barrier commits, plus always the final one.
	// Zero or negative defaults to 10 (durable.DefaultEvery).
	CheckpointEvery int
	// Resume, when set, restores a checkpointed session: the model and
	// velocity are installed before the first barrier and training
	// starts at Resume.Iter+1. Because gradients aggregate in canonical
	// token order, the resumed tail recomputes exactly what an
	// uninterrupted run would have — the final parameters are
	// bit-identical no matter where the crash hit.
	Resume *Resume
}

// Resume is the state a restarting coordinator installs from a
// checkpoint before its first iteration.
type Resume struct {
	// Iter is the last completed iteration (the checkpoint's barrier);
	// training resumes at Iter+1.
	Iter int
	// Params and Vel are the post-step model parameters and momentum
	// velocity at that barrier, flattened per tensor.
	Params [][]float32
	Vel    [][]float32
	// Losses is the per-iteration loss history through Iter.
	Losses []float64
}

func (c Config) validate() error {
	if c.Workers <= 0 {
		return fmt.Errorf("rt: need at least one worker")
	}
	if c.TokenBatch <= 0 || c.TotalBatch <= 0 || c.TotalBatch%c.TokenBatch != 0 {
		return fmt.Errorf("rt: token batch %d must divide total batch %d", c.TokenBatch, c.TotalBatch)
	}
	if c.Iterations <= 0 {
		return fmt.Errorf("rt: iterations must be positive")
	}
	if c.LR <= 0 {
		return fmt.Errorf("rt: learning rate must be positive")
	}
	if c.WorkerTimeout < 0 {
		return fmt.Errorf("rt: worker timeout must not be negative")
	}
	if !c.Compress.Valid() {
		return fmt.Errorf("rt: unknown compression codec %d", c.Compress)
	}
	if r := c.Resume; r != nil {
		if r.Iter < 0 || r.Iter >= c.Iterations {
			return fmt.Errorf("rt: resume iteration %d outside [0, %d)", r.Iter, c.Iterations)
		}
		if len(r.Losses) != r.Iter+1 {
			return fmt.Errorf("rt: resume carries %d losses for %d completed iterations", len(r.Losses), r.Iter+1)
		}
	}
	return nil
}

// checkpointEvery resolves the checkpoint interval (see
// Config.CheckpointEvery).
func (c Config) checkpointEvery() int {
	if c.CheckpointEvery > 0 {
		return c.CheckpointEvery
	}
	return 10
}

// checkpointDue reports whether iteration it ends at a checkpoint
// barrier: every checkpointEvery-th iteration, plus always the last.
func (c Config) checkpointDue(it int) bool {
	if c.Checkpoint == nil {
		return false
	}
	return (it+1)%c.checkpointEvery() == 0 || it == c.Iterations-1
}

func (c Config) tokensPerIter() int { return c.TotalBatch / c.TokenBatch }

// BarrierInfo is what a MembershipPolicy sees at each iteration barrier:
// the live stats of the iteration that just completed plus the
// membership changes waiting to be applied.
type BarrierInfo struct {
	// Iter is the just-completed iteration.
	Iter int
	// Live lists the live, non-draining worker ids, ascending.
	Live []int
	// PendingJoins is the number of connections waiting for admission.
	PendingJoins int
	// PendingLeaves lists workers whose drain announcement is waiting
	// for completion, ascending.
	PendingLeaves []int
	// IterTime is the wall-clock duration of the completed iteration.
	IterTime time.Duration
	// TokensByWorker maps live worker id to tokens trained in the
	// completed iteration (the live per-iteration timing signal the
	// online re-tuner consumes).
	TokensByWorker map[int]int
}

// Decision is a MembershipPolicy's verdict at one barrier. Joins are
// applied before leaves and evictions, so a simultaneous join+leave in
// one barrier window never dips the live count below its resting value.
type Decision struct {
	// AdmitJoins is how many pending joiners to admit now (clamped to
	// BarrierInfo.PendingJoins; admission is FIFO).
	AdmitJoins int
	// CompleteLeaves lists pending drains to complete now. Drains not
	// listed stay pending and are offered again at the next barrier.
	CompleteLeaves []int
	// Evict lists live workers to remove now (coordinator-initiated
	// down-scaling). Evicted workers receive a shutdown, not a fault.
	Evict []int
	// Reassign lists live workers to ask to migrate elsewhere (the
	// multi-tenant pool's donor-side release, internal/jobs). Each
	// receives a reassign request and answers with a normal drain: no
	// new worker-side states, the departure completes through the
	// leave/drain-ack path at a later barrier.
	Reassign []int
}

// MembershipPolicy guides elastic membership. The coordinator calls it
// from its own goroutine only, once per iteration barrier, and applies
// the returned decision atomically before seeding the next iteration.
type MembershipPolicy interface {
	// AtBarrier observes the completed iteration and decides which
	// pending membership changes to apply.
	AtBarrier(info BarrierInfo) Decision
	// Distribution maps the next iteration's nTok tokens onto the live
	// worker ids (ascending): the returned slice, of length nTok, gives
	// each token seq's owner. Returning nil falls back to round-robin
	// over the live set. Ownership only steers scheduling — who trains
	// first and who steals — never the arithmetic, so any distribution
	// preserves the bit-identical-to-Sequential guarantee.
	Distribution(nTok int, live []int) []int
}

// Result summarizes a session.
type Result struct {
	// Params are the final model parameters.
	Params []*tensor.Tensor
	// Losses is the mean training loss per iteration (token-weighted).
	Losses []float64
	// TokensByWorker counts how many tokens each worker trained.
	TokensByWorker []int
	// Steals counts tokens trained away from their shard owner.
	Steals int
	// Faults records every worker fault the coordinator detected
	// (empty in a clean run or in strict mode, which aborts instead).
	Faults []metrics.FaultEvent
	// DeadWorkers lists the workers lost during the session, ascending.
	// Planned departures (drains, evictions) are not deaths and appear
	// in Scales instead.
	DeadWorkers []int
	// Scales records every applied membership change in application
	// order (empty unless Config.Elastic is set).
	Scales []metrics.ScaleEvent
	// Reassigned counts token assignments revoked from dead or hung
	// workers and returned to the pool.
	Reassigned int
}

// Sequential runs the exact reference computation the coordinator
// reproduces: for each iteration, token gradients are computed in token
// order on one process and applied as one SGD step. Distributed training
// through the coordinator yields bit-identical parameters.
func Sequential(net *minidnn.Network, ds *minidnn.Dataset, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &Result{TokensByWorker: make([]int, cfg.Workers)}
	nTok := cfg.tokensPerIter()
	frac := float32(cfg.TokenBatch) / float32(cfg.TotalBatch)
	vel := zerosLike(net.Params())
	acc := zerosLike(net.Params())
	for it := 0; it < cfg.Iterations; it++ {
		zeroAll(acc)
		var loss float64
		for seq := 0; seq < nTok; seq++ {
			lo := seq * cfg.TokenBatch
			x, labels := ds.Batch(lo, lo+cfg.TokenBatch)
			net.ZeroGrads()
			loss += net.Loss(x, labels) / float64(nTok)
			for i, g := range net.Grads() {
				acc[i].AddScaled(g, frac)
			}
		}
		net.ZeroGrads()
		applyUpdate(net, vel, acc, cfg)
		res.Losses = append(res.Losses, loss)
	}
	res.Params = net.CloneParams()
	return res, nil
}

// applyUpdate performs the optimizer step shared by Sequential and the
// coordinator: v = momentum*v + grad; params -= lr*v (plain SGD when
// momentum is 0).
func applyUpdate(net *minidnn.Network, vel, acc []*tensor.Tensor, cfg Config) {
	params := net.Params()
	for i := range params {
		if cfg.Momentum != 0 {
			vel[i].Scale(cfg.Momentum)
			vel[i].Add(acc[i])
			params[i].AddScaled(vel[i], -cfg.LR)
		} else {
			params[i].AddScaled(acc[i], -cfg.LR)
		}
	}
}

func zerosLike(ts []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ts))
	for i, t := range ts {
		out[i] = tensor.New(t.Shape...)
	}
	return out
}

// zeroAll clears a reused accumulation buffer between iterations —
// hoisting the per-iteration zerosLike allocation out of the hot loop.
func zeroAll(ts []*tensor.Tensor) {
	for _, t := range ts {
		t.Zero()
	}
}

// InstallFlat copies flattened per-tensor data (a checkpoint's Params
// or Vel, or an rt.Resume) back into live tensors, validating every
// shape first.
func InstallFlat(ts []*tensor.Tensor, flat [][]float32) error {
	if len(ts) != len(flat) {
		return fmt.Errorf("rt: install %d flat tensors into %d", len(flat), len(ts))
	}
	for i, t := range ts {
		if t.Len() != len(flat[i]) {
			return fmt.Errorf("rt: flat tensor %d has %d elements, model wants %d", i, len(flat[i]), t.Len())
		}
		copy(t.Data, flat[i])
	}
	return nil
}

// flatten copies the tensors' data into per-tensor slices carved from
// one flat backing array: a single allocation for the whole model
// instead of one per tensor. The copy is deliberate — the result must
// not alias live network state, because the in-memory transport delivers
// it by reference and a zombie worker may still read it after the
// coordinator has moved on to the next barrier.
func flatten(ts []*tensor.Tensor) [][]float32 {
	total := 0
	for _, t := range ts {
		total += t.Len()
	}
	backing := make([]float32, total)
	out := make([][]float32, len(ts))
	off := 0
	for i, t := range ts {
		n := t.Len()
		dst := backing[off : off+n : off+n]
		copy(dst, t.Data)
		out[i] = dst
		off += n
	}
	return out
}
