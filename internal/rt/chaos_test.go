package rt

import (
	"strings"
	"testing"
	"time"

	"fela/internal/metrics"
	"fela/internal/minidnn"
	"fela/internal/obs"
	"fela/internal/trace"
	"fela/internal/transport"
)

// dumpFlightOnFailure arranges for the process-global flight recorder
// to be dumped to $FELA_FLIGHT_DIR (or the OS temp dir) if the test
// fails, so a bit-identity violation leaves its causal event history
// behind for CI to upload as an artifact.
func dumpFlightOnFailure(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		name := strings.ReplaceAll(t.Name(), "/", "-")
		if path, err := obs.FlightFailureDump(name); err == nil {
			t.Logf("flight-recorder dump: %s", path)
		} else {
			t.Logf("flight-recorder dump failed: %v", err)
		}
	})
}

// chaosCfg returns a fault-tolerant session config. The timeout must
// dwarf a single token's compute time (sub-millisecond here) but stay
// small enough to keep hang-detection tests fast.
func chaosCfg() Config {
	cfg := baseCfg()
	cfg.Iterations = 3
	cfg.WorkerTimeout = 400 * time.Millisecond
	return cfg
}

// throttleHealthy delays every worker except badWID at each iteration
// start. The MLP is so small that a free-running healthy worker can
// drain the whole token pool before the scripted worker's goroutine is
// even scheduled, and the fault then never fires; the throttle
// guarantees the scripted worker reaches its trigger. Sequential
// ignores Delay, so the bitwise-equivalence assertion is unaffected.
func throttleHealthy(cfg *Config, badWID int) {
	cfg.Delay = func(iter, wid int) time.Duration {
		if wid != badWID {
			return 10 * time.Millisecond
		}
		return 0
	}
}

// script tells a misbehaving worker where in the protocol to fail.
type script struct {
	// killPreRegister closes the connection before registering;
	// hangPreRegister goes silent instead.
	killPreRegister, hangPreRegister bool
	// dieIter is the iteration at which the fault fires (the worker
	// behaves correctly before it).
	dieIter int
	// killAtIterStart closes the connection upon receiving dieIter's
	// iter-start (the coordinator is mid-broadcast).
	killAtIterStart bool
	// killOnAssign / hangOnAssign fire after receiving a token
	// assignment in dieIter: the token is held, never reported.
	killOnAssign, hangOnAssign bool
}

// runScripted speaks the worker protocol over conn, failing as directed.
// hang releases hung goroutines at test cleanup.
func runScripted(wid int, conn transport.Conn, cfg Config, sc script, hang <-chan struct{}) {
	if sc.killPreRegister {
		conn.Close()
		return
	}
	if sc.hangPreRegister {
		<-hang
		conn.Close()
		return
	}
	w := NewWorker(wid, mlp(), blobs(), cfg)
	if err := conn.Send(&transport.Message{Kind: transport.KindRegister, WID: wid}); err != nil {
		return
	}
	for {
		m, err := conn.Recv()
		if err != nil {
			return
		}
		switch m.Kind {
		case transport.KindIterStart:
			if sc.killAtIterStart && m.Iter >= sc.dieIter {
				conn.Close()
				return
			}
			w.setParams(m.Params)
			_ = conn.Send(&transport.Message{Kind: transport.KindRequest, WID: wid})
		case transport.KindAssign:
			if m.Iter >= sc.dieIter {
				if sc.killOnAssign {
					conn.Close()
					return
				}
				if sc.hangOnAssign {
					<-hang
					conn.Close()
					return
				}
			}
			report, err := w.train(m.Token)
			if err != nil {
				return
			}
			if err := conn.Send(report); err != nil {
				return
			}
			_ = conn.Send(&transport.Message{Kind: transport.KindRequest, WID: wid})
		case transport.KindShutdown:
			return
		}
	}
}

// runChaosSession runs a coordinator against cfg.Workers workers where
// badWID runs the given script (badWID < 0 for none) and the rest are
// healthy. wrapServer optionally wraps badWID's server-side connection
// (fault injection on the coordinator's side of the wire).
func runChaosSession(t *testing.T, cfg Config, badWID int, sc script,
	wrapServer func(transport.Conn) transport.Conn) *Result {
	t.Helper()
	dumpFlightOnFailure(t)
	throttleHealthy(&cfg, badWID)
	hang := make(chan struct{})
	t.Cleanup(func() { close(hang) })

	serverConns := make([]transport.Conn, cfg.Workers)
	for wid := 0; wid < cfg.Workers; wid++ {
		server, client := transport.Pair()
		serverConns[wid] = server
		if wid == badWID {
			if wrapServer != nil {
				serverConns[wid] = wrapServer(server)
			}
			go runScripted(wid, client, cfg, sc, hang)
			continue
		}
		w := NewWorker(wid, mlp(), blobs(), cfg)
		// Healthy workers may still exit with an error if the session
		// ends while their last send is in flight; the coordinator's
		// result is what the test asserts on.
		go func() { _ = w.Run(client) }()
	}
	co, err := NewCoordinator(mlp(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := co.Run(serverConns)
		done <- outcome{res, err}
	}()
	select {
	case out := <-done:
		if out.err != nil {
			t.Fatalf("coordinator failed: %v", out.err)
		}
		return out.res
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator hung")
		return nil
	}
}

// assertChaosOutcome checks the invariants every chaos run must keep:
// the session completed, the result is bit-identical to Sequential, all
// tokens were trained, and exactly the scripted worker died.
func assertChaosOutcome(t *testing.T, cfg Config, res *Result, badWID int) {
	t.Helper()
	seq, err := Sequential(mlp(), blobs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !minidnn.ParamsEqual(seq.Params, res.Params) {
		t.Fatal("chaos run diverged from sequential reference")
	}
	total := 0
	for _, n := range res.TokensByWorker {
		total += n
	}
	if want := cfg.Iterations * cfg.TotalBatch / cfg.TokenBatch; total != want {
		t.Fatalf("tokens trained = %d, want %d", total, want)
	}
	if len(res.Faults) == 0 {
		t.Fatal("no fault events recorded")
	}
	if len(res.DeadWorkers) != 1 || res.DeadWorkers[0] != badWID {
		t.Fatalf("DeadWorkers = %v, want [%d]", res.DeadWorkers, badWID)
	}
}

// TestChaosKillMidIteration is the headline recovery property: a worker
// dies while holding an assigned token mid-iteration, the coordinator
// reassigns the dead worker's tokens, the session completes, and the
// parameters stay bit-identical to Sequential.
func TestChaosKillMidIteration(t *testing.T) {
	cfg := chaosCfg()
	res := runChaosSession(t, cfg, 2, script{dieIter: 1, killOnAssign: true}, nil)
	assertChaosOutcome(t, cfg, res, 2)
	if res.Reassigned == 0 {
		t.Error("dead worker held a token but nothing was reassigned")
	}
	if res.TokensByWorker[2] == 0 {
		t.Error("worker 2 should have trained tokens before dying at iteration 1")
	}
}

// TestChaosEveryProtocolState kills or hangs one worker at every
// protocol state and asserts the run still completes bit-identically.
func TestChaosEveryProtocolState(t *testing.T) {
	cases := []struct {
		name string
		sc   script
	}{
		{"kill-pre-register", script{killPreRegister: true}},
		{"hang-pre-register", script{hangPreRegister: true}},
		{"kill-during-iter-start-broadcast", script{killAtIterStart: true}},
		{"kill-at-later-iter-start", script{killAtIterStart: true, dieIter: 2}},
		{"kill-post-assign", script{killOnAssign: true}},
		{"hang-post-assign", script{hangOnAssign: true, dieIter: 1}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := chaosCfg()
			res := runChaosSession(t, cfg, 1, tc.sc, nil)
			assertChaosOutcome(t, cfg, res, 1)
		})
	}
}

// TestChaosGarbledReport corrupts the wire mid-report: the coordinator
// classifies the codec failure, kills the connection, and recovers.
func TestChaosGarbledReport(t *testing.T) {
	cfg := chaosCfg()
	// Server-side receive #2 is the worker's first report (after
	// register and the first request): the report arrives garbled.
	wrap := func(c transport.Conn) transport.Conn {
		return transport.NewFaultConn(c, 42).GarbleRecvsAfter(2)
	}
	res := runChaosSession(t, cfg, 3, script{dieIter: 1 << 30}, wrap)
	assertChaosOutcome(t, cfg, res, 3)
	st := metrics.SummarizeFaults(res.Faults)
	if st.ByClass["codec"] == 0 {
		t.Errorf("expected a codec-classified fault, got %v", st.ByClass)
	}
}

// TestChaosHungWorkerClassifiedTimeout: a hang (vs a crash) must be
// detected by deadline expiry and classified as a timeout.
func TestChaosHungWorkerClassifiedTimeout(t *testing.T) {
	cfg := chaosCfg()
	res := runChaosSession(t, cfg, 0, script{hangOnAssign: true}, nil)
	assertChaosOutcome(t, cfg, res, 0)
	st := metrics.SummarizeFaults(res.Faults)
	if st.ByClass["timeout"] == 0 {
		t.Errorf("hang not classified as timeout: %v", st.ByClass)
	}
	if res.Reassigned == 0 {
		t.Error("hung worker's token was never reassigned")
	}
}

// TestChaosFaultsAreTraced: fault events land in the configured trace
// as point events.
func TestChaosFaultsAreTraced(t *testing.T) {
	cfg := chaosCfg()
	tr := &trace.Trace{}
	cfg.Trace = tr
	res := runChaosSession(t, cfg, 1, script{killOnAssign: true}, nil)
	assertChaosOutcome(t, cfg, res, 1)
	faults := tr.ByKind(trace.Fault)
	if len(faults) != len(res.Faults) {
		t.Fatalf("trace has %d fault events, result has %d", len(faults), len(res.Faults))
	}
	if faults[0].Worker != 1 {
		t.Errorf("fault traced against worker %d, want 1", faults[0].Worker)
	}
}

// TestChaosAllWorkersDie: losing every worker must surface an error,
// not a hang.
func TestChaosAllWorkersDie(t *testing.T) {
	dumpFlightOnFailure(t)
	cfg := chaosCfg()
	cfg.Workers = 2
	hang := make(chan struct{})
	t.Cleanup(func() { close(hang) })
	serverConns := make([]transport.Conn, cfg.Workers)
	for wid := 0; wid < cfg.Workers; wid++ {
		server, client := transport.Pair()
		serverConns[wid] = server
		go runScripted(wid, client, cfg, script{killOnAssign: true}, hang)
	}
	co, err := NewCoordinator(mlp(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := co.Run(serverConns)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("coordinator succeeded with every worker dead")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator hung with every worker dead")
	}
}

// TestChaosStrictModeStillAborts: without WorkerTimeout the old
// fail-fast contract holds — a dead worker aborts the session.
func TestChaosStrictModeStillAborts(t *testing.T) {
	dumpFlightOnFailure(t)
	cfg := chaosCfg()
	cfg.WorkerTimeout = 0
	throttleHealthy(&cfg, 1)
	hang := make(chan struct{})
	t.Cleanup(func() { close(hang) })
	serverConns := make([]transport.Conn, cfg.Workers)
	for wid := 0; wid < cfg.Workers; wid++ {
		server, client := transport.Pair()
		serverConns[wid] = server
		if wid == 1 {
			go runScripted(wid, client, cfg, script{killOnAssign: true}, hang)
			continue
		}
		go func(wid int) { _ = NewWorker(wid, mlp(), blobs(), cfg).Run(client) }(wid)
	}
	co, err := NewCoordinator(mlp(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := co.Run(serverConns)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("strict-mode coordinator tolerated a dead worker")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("strict-mode coordinator hung")
	}
}

// TestChaosTCPWorkerKill runs the kill-mid-iteration scenario over real
// TCP connections: the dead peer surfaces via the socket, the session
// completes, and the result matches Sequential.
func TestChaosTCPWorkerKill(t *testing.T) {
	dumpFlightOnFailure(t)
	cfg := chaosCfg()
	cfg.Workers = 3
	throttleHealthy(&cfg, 2)
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	hang := make(chan struct{})
	t.Cleanup(func() { close(hang) })
	for wid := 0; wid < cfg.Workers; wid++ {
		wid := wid
		go func() {
			conn, err := transport.Dial(l.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			if wid == 2 {
				runScripted(wid, conn, cfg, script{dieIter: 1, killOnAssign: true}, hang)
				return
			}
			defer conn.Close()
			_ = NewWorker(wid, mlp(), blobs(), cfg).Run(conn)
		}()
	}
	conns := make([]transport.Conn, cfg.Workers)
	for i := range conns {
		c, err := l.Accept()
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	co, err := NewCoordinator(mlp(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Run(conns)
	if err != nil {
		t.Fatal(err)
	}
	assertChaosOutcome(t, cfg, res, 2)
}
