package rt

import (
	"strings"
	"testing"

	"fela/internal/minidnn"
	"fela/internal/obs"
	"fela/internal/transport"
)

// TestBroadcastEncodesOncePerIteration is the wire-path acceptance
// check: over the binary TCP codec, the coordinator serializes each
// iteration's parameter broadcast exactly once no matter how many
// workers receive it, and the session stays bit-identical to
// Sequential.
func TestBroadcastEncodesOncePerIteration(t *testing.T) {
	const workers, iterations = 4, 3
	cfg := Config{
		Workers: workers, TotalBatch: 32, TokenBatch: 4,
		Iterations: iterations, LR: 0.1,
	}
	seed := func() *minidnn.Network { return minidnn.NewMLP(1, 8, 16, 3) }
	ds := minidnn.SyntheticBlobs(2, 32, 8, 3)

	reg := obs.NewRegistry()
	coCfg := cfg
	coCfg.Metrics = reg

	l, err := transport.ListenCodec("127.0.0.1:0", transport.CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	serverConns := make([]transport.Conn, workers)
	acceptErr := make(chan error, 1)
	go func() {
		for i := range serverConns {
			c, err := l.Accept()
			if err != nil {
				acceptErr <- err
				return
			}
			serverConns[i] = c
		}
		acceptErr <- nil
	}()

	workerErrs := make(chan error, workers)
	for wid := 0; wid < workers; wid++ {
		wid := wid
		go func() {
			c, err := transport.DialCodec(l.Addr(), transport.CodecBinary)
			if err != nil {
				workerErrs <- err
				return
			}
			defer c.Close()
			workerErrs <- NewWorker(wid, seed(), ds, cfg).Run(c)
		}()
	}
	if err := <-acceptErr; err != nil {
		t.Fatal(err)
	}

	co, err := NewCoordinator(seed(), coCfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Run(serverConns)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < workers; i++ {
		if err := <-workerErrs; err != nil {
			t.Fatal(err)
		}
	}

	// Bit-identical to the sequential reference under the binary codec.
	want, err := Sequential(seed(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Params {
		if !res.Params[i].Equal(want.Params[i]) {
			t.Fatalf("parameter tensor %d differs from Sequential under the binary codec", i)
		}
	}

	// The encode-once property: iter-start frames were serialized once
	// per iteration, not once per worker — while every worker decoded
	// its own copy.
	var iterStartEncodes, iterStartDecodes int64
	for labels, v := range reg.CounterValues(transport.MetricCodecOps) {
		if !strings.Contains(labels, "iter-start") {
			continue
		}
		switch {
		case strings.Contains(labels, "encode"):
			iterStartEncodes += v
		case strings.Contains(labels, "decode"):
			iterStartDecodes += v
		}
	}
	if iterStartEncodes != iterations {
		t.Fatalf("iter-start encoded %d times for %d iterations × %d workers; broadcast cache should encode once per iteration",
			iterStartEncodes, iterations, workers)
	}
	if iterStartDecodes != 0 {
		// Workers run with their own (nil) registry; only the
		// coordinator side feeds reg, and it never decodes iter-start.
		t.Fatalf("coordinator registry saw %d iter-start decodes, want 0", iterStartDecodes)
	}
}
