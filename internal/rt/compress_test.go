package rt

import (
	"math"
	"strings"
	"testing"

	"fela/internal/minidnn"
	"fela/internal/obs"
	"fela/internal/transport"
)

// runTCPSession drives a full binary-codec TCP session with the given
// coordinator and worker configs and returns the result plus the
// coordinator-side registry.
func runTCPSession(t *testing.T, coCfg, wCfg Config, seed func() *minidnn.Network, ds *minidnn.Dataset) (*Result, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	coCfg.Metrics = reg

	l, err := transport.ListenCodec("127.0.0.1:0", transport.CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	serverConns := make([]transport.Conn, coCfg.Workers)
	acceptErr := make(chan error, 1)
	go func() {
		for i := range serverConns {
			c, err := l.Accept()
			if err != nil {
				acceptErr <- err
				return
			}
			serverConns[i] = c
		}
		acceptErr <- nil
	}()

	workerErrs := make(chan error, coCfg.Workers)
	for wid := 0; wid < coCfg.Workers; wid++ {
		wid := wid
		go func() {
			c, err := transport.DialCodec(l.Addr(), transport.CodecBinary)
			if err != nil {
				workerErrs <- err
				return
			}
			defer c.Close()
			workerErrs <- NewWorker(wid, seed(), ds, wCfg).Run(c)
		}()
	}
	if err := <-acceptErr; err != nil {
		t.Fatal(err)
	}

	co, err := NewCoordinator(seed(), coCfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Run(serverConns)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < coCfg.Workers; i++ {
		if err := <-workerErrs; err != nil {
			t.Fatal(err)
		}
	}
	return res, reg
}

// compressedWireBytes sums the coordinator-side decoded wire bytes for
// one codec label — nonzero iff reports actually arrived compressed.
func compressedWireBytes(reg *obs.Registry, codec string) int64 {
	var total int64
	for labels, v := range reg.CounterValues(transport.MetricCompressWireBytes) {
		if strings.Contains(labels, "decode") && strings.Contains(labels, codec) {
			total += v
		}
	}
	return total
}

// TestCompressedSessionOverTCP runs a full session with int8 gradient
// compression negotiated on both sides: reports must actually travel
// compressed (wire-byte telemetry on the coordinator), training must
// still converge, and the compression ratio must be ≈4×.
func TestCompressedSessionOverTCP(t *testing.T) {
	cfg := Config{
		Workers: 3, TotalBatch: 30, TokenBatch: 5,
		Iterations: 8, LR: 0.1,
		Compress: transport.CompressInt8,
	}
	seed := func() *minidnn.Network { return minidnn.NewMLP(1, 8, 16, 3) }
	ds := minidnn.SyntheticBlobs(2, 30, 8, 3)

	res, reg := runTCPSession(t, cfg, cfg, seed, ds)
	if len(res.Losses) != cfg.Iterations {
		t.Fatalf("session recorded %d losses for %d iterations", len(res.Losses), cfg.Iterations)
	}
	for i, l := range res.Losses {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("iteration %d loss is %v under int8 compression", i, l)
		}
	}
	if last, first := res.Losses[len(res.Losses)-1], res.Losses[0]; last >= first {
		t.Fatalf("loss did not decrease under int8 compression: %v -> %v", first, last)
	}
	wire := compressedWireBytes(reg, "int8")
	if wire == 0 {
		t.Fatal("no int8-compressed report bytes decoded: negotiation failed to engage")
	}
	var raw int64
	for labels, v := range reg.CounterValues(transport.MetricCompressRawBytes) {
		if strings.Contains(labels, "decode") && strings.Contains(labels, "int8") {
			raw += v
		}
	}
	if raw < 3*wire {
		t.Fatalf("int8 ratio %.2f, want ≈4 (raw %d wire %d)", float64(raw)/float64(wire), raw, wire)
	}
}

// TestCompressionNegotiationMismatch: a worker requesting a lossy codec
// against a coordinator permitting only exact must degrade to lossless —
// the session completes bit-identical to Sequential and no compressed
// bytes ever cross the wire.
func TestCompressionNegotiationMismatch(t *testing.T) {
	coCfg := Config{
		Workers: 2, TotalBatch: 16, TokenBatch: 4,
		Iterations: 4, LR: 0.1,
		// Compress left at the default: exact only.
	}
	wCfg := coCfg
	wCfg.Compress = transport.CompressTopK // request denied at negotiation
	seed := func() *minidnn.Network { return minidnn.NewMLP(1, 8, 16, 3) }
	ds := minidnn.SyntheticBlobs(2, 16, 8, 3)

	res, reg := runTCPSession(t, coCfg, wCfg, seed, ds)
	want, err := Sequential(seed(), ds, coCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Params {
		if !res.Params[i].Equal(want.Params[i]) {
			t.Fatalf("parameter tensor %d differs from Sequential after a denied compression request", i)
		}
	}
	if wire := compressedWireBytes(reg, "topk"); wire != 0 {
		t.Fatalf("%d top-k bytes decoded despite the coordinator denying compression", wire)
	}
}

// TestCompressionNegotiatedExactStaysBitIdentical: both sides agreeing
// on a lossy codec is opt-in; both sides agreeing on exact (the default)
// must keep the existing bit-identical guarantee over the same wire.
func TestCompressionNegotiatedExactStaysBitIdentical(t *testing.T) {
	cfg := Config{
		Workers: 2, TotalBatch: 16, TokenBatch: 4,
		Iterations: 4, LR: 0.1,
		Compress: transport.CompressExact,
	}
	seed := func() *minidnn.Network { return minidnn.NewMLP(1, 8, 16, 3) }
	ds := minidnn.SyntheticBlobs(2, 16, 8, 3)

	res, _ := runTCPSession(t, cfg, cfg, seed, ds)
	want, err := Sequential(seed(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Params {
		if !res.Params[i].Equal(want.Params[i]) {
			t.Fatalf("parameter tensor %d differs from Sequential under negotiated-exact", i)
		}
	}
}
