package rt

import (
	"strings"
	"testing"

	"fela/internal/obs"
	"fela/internal/transport"
)

// TestSessionFlightRecorder runs a real in-memory session with a private
// flight ring and checks the protocol history is recorded with trace ids
// that intersect the span tracer's traces — the property that makes a
// JSONL flight dump navigable from a trace export and vice versa.
func TestSessionFlightRecorder(t *testing.T) {
	cfg := baseCfg()
	cfg.Spans = obs.NewTracer("test")
	cfg.Flight = obs.NewFlightRecorder(1 << 12)

	co, err := NewCoordinator(mlp(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	serverConns := make([]transport.Conn, cfg.Workers)
	errs := make(chan error, cfg.Workers)
	for wid := 0; wid < cfg.Workers; wid++ {
		server, client := transport.Pair()
		serverConns[wid] = server
		w := NewWorker(wid, mlp(), blobs(), cfg)
		go func() { errs <- w.Run(client) }()
	}
	if _, err := co.Run(serverConns); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Workers; i++ {
		if werr := <-errs; werr != nil {
			t.Fatal(werr)
		}
	}

	tokens := cfg.Iterations * (cfg.TotalBatch / cfg.TokenBatch)
	events := cfg.Flight.Snapshot(0)
	byEvent := map[string]int{}
	for _, ev := range events {
		if ev.Comp != "rt" {
			t.Fatalf("unexpected component %q in session ring", ev.Comp)
		}
		byEvent[ev.Event]++
	}
	if byEvent["token.assign"] != tokens {
		t.Errorf("token.assign events = %d, want %d", byEvent["token.assign"], tokens)
	}
	if byEvent["barrier"] != cfg.Iterations {
		t.Errorf("barrier events = %d, want %d", byEvent["barrier"], cfg.Iterations)
	}

	// Trace ids in the ring must be real span traces.
	spanTraces := map[string]bool{}
	for _, sp := range cfg.Spans.Events() {
		spanTraces[sp.Ctx.TraceHex()] = true
	}
	linked := 0
	for _, ev := range events {
		if ev.Trace == "" {
			continue
		}
		linked++
		if !spanTraces[ev.Trace] {
			t.Fatalf("flight event %s carries trace %s unknown to the tracer", ev.Event, ev.Trace)
		}
	}
	if linked == 0 {
		t.Fatal("no flight event carries a trace id")
	}

	// Assign events carry worker id, iteration and token seq.
	for _, ev := range events {
		if ev.Event != "token.assign" {
			continue
		}
		if ev.Worker < 0 || ev.Iter < 0 || !strings.HasPrefix(ev.Detail, "seq=") {
			t.Fatalf("malformed assign event: %+v", ev)
		}
	}

	// Sequence numbers are strictly increasing in snapshot order.
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("snapshot out of order at %d: %d then %d", i, events[i-1].Seq, events[i].Seq)
		}
	}
}
