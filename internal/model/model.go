package model

import "fmt"

// Model is an ordered sequence of layers plus the input geometry fed to
// the first layer.
type Model struct {
	// Name identifies the architecture, e.g. "VGG19".
	Name string
	// InputC, InputH, InputW describe one input sample.
	InputC, InputH, InputW int
	// Layers in forward order; includes parameter-free layers.
	Layers []Layer
}

// InputElems is the element count of one input sample.
func (m *Model) InputElems() int64 {
	return int64(m.InputC) * int64(m.InputH) * int64(m.InputW)
}

// SampleBytes is the byte size of one input sample.
func (m *Model) SampleBytes() int64 { return m.InputElems() * BytesPerElement }

// Params is the total trainable parameter count.
func (m *Model) Params() int64 {
	var n int64
	for _, l := range m.Layers {
		n += l.Params
	}
	return n
}

// ParamBytes is the total parameter footprint in bytes.
func (m *Model) ParamBytes() int64 { return m.Params() * BytesPerElement }

// FwdFLOPs is the per-sample forward cost of the whole model.
func (m *Model) FwdFLOPs() int64 {
	var n int64
	for _, l := range m.Layers {
		n += l.FwdFLOPs
	}
	return n
}

// WeightLayers returns the layers that carry parameters, in order. The
// paper's "layer numbers" (Table I, Fig. 5) count exactly these.
func (m *Model) WeightLayers() []Layer {
	out := make([]Layer, 0, len(m.Layers))
	for _, l := range m.Layers {
		if l.HasWeights() {
			out = append(out, l)
		}
	}
	return out
}

// WeightLayerCount is len(WeightLayers()).
func (m *Model) WeightLayerCount() int { return len(m.WeightLayers()) }

// LayerRange returns the contiguous slice of all layers (including
// parameter-free ones) spanning weight layers [from, to], 1-indexed
// inclusive, mirroring the paper's "Layer 1~8" notation. Parameter-free
// layers between the two endpoints are included; leading/trailing pools
// attach to the sub-model that precedes them.
func (m *Model) LayerRange(from, to int) []Layer {
	if from < 1 || to < from {
		panic(fmt.Sprintf("model: bad weight-layer range [%d,%d]", from, to))
	}
	start, end := -1, -1
	idx := 0
	for i, l := range m.Layers {
		if !l.HasWeights() {
			continue
		}
		idx++
		if idx == from {
			start = i
		}
		if idx == to {
			end = i
		}
	}
	if start < 0 || end < 0 {
		panic(fmt.Sprintf("model: weight-layer range [%d,%d] out of bounds (model has %d)", from, to, idx))
	}
	// Attach trailing parameter-free layers (pools) to this range.
	for end+1 < len(m.Layers) && !m.Layers[end+1].HasWeights() {
		end++
	}
	return m.Layers[start : end+1]
}

// Validate checks internal consistency: activation sizes must chain
// (each layer's InElems equals the previous layer's OutElems).
func (m *Model) Validate() error {
	if len(m.Layers) == 0 {
		return fmt.Errorf("model %s: no layers", m.Name)
	}
	prev := m.InputElems()
	for i, l := range m.Layers {
		if l.InElems != prev {
			return fmt.Errorf("model %s: layer %d (%s) expects %d input elems, previous produces %d",
				m.Name, i, l.Name, l.InElems, prev)
		}
		prev = l.OutElems
	}
	seen := make(map[string]bool, len(m.Layers))
	for _, l := range m.Layers {
		if seen[l.Name] {
			return fmt.Errorf("model %s: duplicate layer name %q", m.Name, l.Name)
		}
		seen[l.Name] = true
	}
	return nil
}

// SubModel is a contiguous slice of a model, the unit a token trains.
type SubModel struct {
	// Index is the 0-based sub-model position (SM-1 has Index 0).
	Index int
	// Name is a human-readable identifier such as "VGG19/SM-1[L1-8]".
	Name string
	// Layers are the layers of this sub-model in forward order.
	Layers []Layer
	// FromLayer and ToLayer are the 1-indexed weight-layer bounds.
	FromLayer, ToLayer int
	// ThresholdBatch is the batch size at which the slowest-saturating
	// layer of this sub-model saturates the GPU (§IV-A).
	ThresholdBatch int
}

// Params is the total parameter count of the sub-model.
func (sm *SubModel) Params() int64 {
	var n int64
	for _, l := range sm.Layers {
		n += l.Params
	}
	return n
}

// ParamBytes is the parameter footprint in bytes.
func (sm *SubModel) ParamBytes() int64 { return sm.Params() * BytesPerElement }

// FwdFLOPs is the per-sample forward cost.
func (sm *SubModel) FwdFLOPs() int64 {
	var n int64
	for _, l := range sm.Layers {
		n += l.FwdFLOPs
	}
	return n
}

// InBytes is the per-sample input activation size in bytes: what must be
// fetched from the producer of the previous sub-model's output.
func (sm *SubModel) InBytes() int64 {
	if len(sm.Layers) == 0 {
		return 0
	}
	return sm.Layers[0].InElems * BytesPerElement
}

// OutBytes is the per-sample output activation size in bytes.
func (sm *SubModel) OutBytes() int64 {
	if len(sm.Layers) == 0 {
		return 0
	}
	return sm.Layers[len(sm.Layers)-1].OutElems * BytesPerElement
}

// CommIntensive reports whether the sub-model contains any
// communication-intensive (FC) layer; CTD applies to these (§III-F).
func (sm *SubModel) CommIntensive() bool {
	for _, l := range sm.Layers {
		if l.CommIntensive {
			return true
		}
	}
	return false
}
