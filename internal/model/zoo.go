package model

import "fmt"

// VGG19 returns the VGG19 architecture for (3,224,224) inputs: 16 CONV
// layers and 3 FC layers (19 weight layers), with max-pool layers
// interleaved as in the original network. This is the paper's primary
// benchmark (§V-A, footnote 17).
func VGG19() *Model {
	cfg := []struct {
		outC  int
		pool  bool // pool after this conv block entry
		count int
	}{
		{64, false, 2}, {0, true, 0},
		{128, false, 2}, {0, true, 0},
		{256, false, 4}, {0, true, 0},
		{512, false, 4}, {0, true, 0},
		{512, false, 4}, {0, true, 0},
	}
	m := &Model{Name: "VGG19", InputC: 3, InputH: 224, InputW: 224}
	c, h, w := 3, 224, 224
	block, convIdx := 1, 1
	for _, e := range cfg {
		if e.pool {
			m.Layers = append(m.Layers, NewPool(fmt.Sprintf("pool%d", block), c, h, w, 2, 2))
			h, w = h/2, w/2
			block++
			convIdx = 1
			continue
		}
		for i := 0; i < e.count; i++ {
			m.Layers = append(m.Layers, NewConv(ConvSpec{
				Name: fmt.Sprintf("conv%d_%d", block, convIdx),
				InC:  c, OutC: e.outC, InH: h, InW: w,
				Kernel: 3, Stride: 1, Pad: 1,
			}))
			c = e.outC
			convIdx++
		}
	}
	m.Layers = append(m.Layers,
		NewFC("fc6", c*h*w, 4096),
		NewFC("fc7", 4096, 4096),
		NewFC("fc8", 4096, 1000),
	)
	mustValidate(m)
	return m
}

// GoogLeNet returns GoogLeNet for (3,32,32) inputs as used in the paper
// (§V-A, footnote 17). To match the paper's 12-layer numbering (§IV-A:
// partitions L1–4, L5–9, L10–12 where L12 carries the FC), the stem's
// 1x1+3x3 convolution pair is a single composite weight layer:
//
//	L1 conv7x7, L2 stem(1x1,3x3), L3–L11 the nine inception modules,
//	L12 the final FC — 12 weight layers.
func GoogLeNet() *Model {
	m := &Model{Name: "GoogLeNet", InputC: 3, InputH: 32, InputW: 32}
	// Stem: 7x7 stride 1 (CIFAR-scale adaptation keeps spatial size).
	m.Layers = append(m.Layers, NewConv(ConvSpec{
		Name: "conv1", InC: 3, OutC: 64, InH: 32, InW: 32, Kernel: 7, Stride: 1, Pad: 3,
	}))
	m.Layers = append(m.Layers, NewPool("pool1", 64, 32, 32, 3, 2)) // -> 15x15
	// Composite stem layer: conv 1x1 (64->64) then conv 3x3 (64->192).
	r := NewConv(ConvSpec{Name: "stem/1x1", InC: 64, OutC: 64, InH: 15, InW: 15, Kernel: 1})
	s := NewConv(ConvSpec{Name: "stem/3x3", InC: 64, OutC: 192, InH: 15, InW: 15, Kernel: 3, Pad: 1})
	stem := NewComposite("conv2", r.Params+s.Params, r.FwdFLOPs+s.FwdFLOPs, r.InElems, s.OutElems)
	stem.Kind = Conv
	stem.Shape = "(64,192,15,15)"
	m.Layers = append(m.Layers, stem)
	m.Layers = append(m.Layers, NewPool("pool2", 192, 15, 15, 3, 2)) // -> 7x7

	type incep struct {
		name                         string
		c1, c3r, c3, c5r, c5, pp, hw int
	}
	in := 192
	h := 7
	for _, e := range []incep{
		{"incep3a", 64, 96, 128, 16, 32, 32, 7},
		{"incep3b", 128, 128, 192, 32, 96, 64, 7},
		{"pool", 0, 0, 0, 0, 0, 0, 0},
		{"incep4a", 192, 96, 208, 16, 48, 64, 3},
		{"incep4b", 160, 112, 224, 24, 64, 64, 3},
		{"incep4c", 128, 128, 256, 24, 64, 64, 3},
		{"incep4d", 112, 144, 288, 32, 64, 64, 3},
		{"incep4e", 256, 160, 320, 32, 128, 128, 3},
		{"pool", 0, 0, 0, 0, 0, 0, 0},
		{"incep5a", 256, 160, 320, 32, 128, 128, 1},
		{"incep5b", 384, 192, 384, 48, 128, 128, 1},
	} {
		if e.name == "pool" {
			m.Layers = append(m.Layers, NewPool(fmt.Sprintf("pool%d", h), in, h, h, 3, 2))
			h = (h-3)/2 + 1
			continue
		}
		spec := InceptionSpec{
			Name: e.name, InC: in, H: e.hw, W: e.hw,
			C1: e.c1, C3r: e.c3r, C3: e.c3, C5r: e.c5r, C5: e.c5, PoolProj: e.pp,
		}
		m.Layers = append(m.Layers, NewInception(spec))
		in = spec.OutC()
	}
	m.Layers = append(m.Layers, NewFC("fc", in*h*h, 1000))
	mustValidate(m)
	return m
}

// LeNet5 returns the classic LeNet-5 for (1,32,32) inputs: 5 weight
// layers (Table I).
func LeNet5() *Model {
	m := &Model{Name: "LeNet-5", InputC: 1, InputH: 32, InputW: 32}
	m.Layers = append(m.Layers,
		NewConv(ConvSpec{Name: "conv1", InC: 1, OutC: 6, InH: 32, InW: 32, Kernel: 5}),
		NewPool("pool1", 6, 28, 28, 2, 2),
		NewConv(ConvSpec{Name: "conv2", InC: 6, OutC: 16, InH: 14, InW: 14, Kernel: 5}),
		NewPool("pool2", 16, 10, 10, 2, 2),
		NewFC("fc3", 400, 120),
		NewFC("fc4", 120, 84),
		NewFC("fc5", 84, 10),
	)
	mustValidate(m)
	return m
}

// AlexNet returns AlexNet for (3,224,224) inputs: 8 weight layers
// (Table I).
func AlexNet() *Model {
	m := &Model{Name: "AlexNet", InputC: 3, InputH: 224, InputW: 224}
	m.Layers = append(m.Layers,
		NewConv(ConvSpec{Name: "conv1", InC: 3, OutC: 96, InH: 224, InW: 224, Kernel: 11, Stride: 4, Pad: 2}),
		NewPool("pool1", 96, 55, 55, 3, 2),
		NewConv(ConvSpec{Name: "conv2", InC: 96, OutC: 256, InH: 27, InW: 27, Kernel: 5, Pad: 2}),
		NewPool("pool2", 256, 27, 27, 3, 2),
		NewConv(ConvSpec{Name: "conv3", InC: 256, OutC: 384, InH: 13, InW: 13, Kernel: 3, Pad: 1}),
		NewConv(ConvSpec{Name: "conv4", InC: 384, OutC: 384, InH: 13, InW: 13, Kernel: 3, Pad: 1}),
		NewConv(ConvSpec{Name: "conv5", InC: 384, OutC: 256, InH: 13, InW: 13, Kernel: 3, Pad: 1}),
		NewPool("pool5", 256, 13, 13, 3, 2),
		NewFC("fc6", 9216, 4096),
		NewFC("fc7", 4096, 4096),
		NewFC("fc8", 4096, 1000),
	)
	mustValidate(m)
	return m
}

// ResNet152 returns a ResNet-152 skeleton for (3,224,224) inputs: the
// standard stem plus bottleneck blocks (3, 8, 36, 3) modelled as
// composite layers (each bottleneck = 1x1 reduce, 3x3, 1x1 expand), and
// the final FC. Weight-layer count: 1 (stem) + 50 x 3 (bottleneck
// convs) + 1 (fc) = 152, matching Table I. Residual additions are free
// at this granularity.
func ResNet152() *Model {
	m := &Model{Name: "ResNet-152", InputC: 3, InputH: 224, InputW: 224}
	m.Layers = append(m.Layers, NewConv(ConvSpec{
		Name: "conv1", InC: 3, OutC: 64, InH: 224, InW: 224, Kernel: 7, Stride: 2, Pad: 3,
	})) // -> 112
	m.Layers = append(m.Layers, NewPool("pool1", 64, 112, 112, 2, 2)) // -> 56

	type stage struct {
		name           string
		blocks         int
		mid, out, h, w int
	}
	in := 64
	for _, st := range []stage{
		{"conv2", 3, 64, 256, 56, 56},
		{"conv3", 8, 128, 512, 28, 28},
		{"conv4", 36, 256, 1024, 14, 14},
		{"conv5", 3, 512, 2048, 7, 7},
	} {
		for b := 0; b < st.blocks; b++ {
			if b == 0 && in != 64 {
				// Stride-2 downsample entering the stage: halve spatial
				// size with a pooling placeholder (the projection
				// shortcut's cost is folded into the first 1x1).
				m.Layers = append(m.Layers,
					NewPool(fmt.Sprintf("%s_down", st.name), in, st.h*2, st.w*2, 2, 2))
			}
			c1 := NewConv(ConvSpec{Name: fmt.Sprintf("%s_%d/1x1a", st.name, b+1),
				InC: in, OutC: st.mid, InH: st.h, InW: st.w, Kernel: 1})
			c2 := NewConv(ConvSpec{Name: fmt.Sprintf("%s_%d/3x3", st.name, b+1),
				InC: st.mid, OutC: st.mid, InH: st.h, InW: st.w, Kernel: 3, Pad: 1})
			c3 := NewConv(ConvSpec{Name: fmt.Sprintf("%s_%d/1x1b", st.name, b+1),
				InC: st.mid, OutC: st.out, InH: st.h, InW: st.w, Kernel: 1})
			m.Layers = append(m.Layers, c1, c2, c3)
			in = st.out
		}
	}
	m.Layers = append(m.Layers, NewPool("avgpool", in, 7, 7, 7, 7))
	m.Layers = append(m.Layers, NewFC("fc", in, 1000))
	mustValidate(m)
	return m
}

// ByName returns a zoo model by its canonical name.
func ByName(name string) (*Model, error) {
	switch name {
	case "VGG19", "vgg19":
		return VGG19(), nil
	case "GoogLeNet", "googlenet":
		return GoogLeNet(), nil
	case "LeNet-5", "lenet5":
		return LeNet5(), nil
	case "AlexNet", "alexnet":
		return AlexNet(), nil
	case "ResNet-152", "resnet152":
		return ResNet152(), nil
	default:
		return nil, fmt.Errorf("model: unknown model %q", name)
	}
}

func mustValidate(m *Model) {
	if err := m.Validate(); err != nil {
		panic(err)
	}
}

// TableIEntry is a row of the paper's Table I ("Growing Neural Network
// Layer Numbers").
type TableIEntry struct {
	Model string
	Year  int
	// Layers is the layer number as reported by the paper.
	Layers int
}

// TableI returns the paper's Table I verbatim.
func TableI() []TableIEntry {
	return []TableIEntry{
		{"LeNet-5", 1998, 5},
		{"AlexNet", 2012, 8},
		{"ZF Net", 2013, 8},
		{"VGG16", 2014, 16},
		{"VGG19", 2014, 19},
		{"GoogleNet", 2014, 22},
		{"ResNet-152", 2015, 152},
		{"CUImage", 2016, 1207},
		{"SENet", 2017, 154},
	}
}
