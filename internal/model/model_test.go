package model

import (
	"strings"
	"testing"
)

func TestVGG19Structure(t *testing.T) {
	m := VGG19()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.WeightLayerCount(); got != 19 {
		t.Fatalf("VGG19 weight layers = %d, want 19", got)
	}
	wl := m.WeightLayers()
	convs, fcs := 0, 0
	for _, l := range wl {
		switch l.Kind {
		case Conv:
			convs++
		case FC:
			fcs++
		default:
			t.Fatalf("unexpected weight layer kind %v", l.Kind)
		}
	}
	if convs != 16 || fcs != 3 {
		t.Fatalf("VGG19 has %d conv + %d fc weight layers, want 16+3", convs, fcs)
	}
	// VGG19 has ~143.7M parameters.
	p := m.Params()
	if p < 140e6 || p > 148e6 {
		t.Fatalf("VGG19 params = %d, want ~143.7M", p)
	}
	// Forward cost ~19.6 GFLOPs/sample (2 FLOPs per MAC -> ~39.3G).
	f := m.FwdFLOPs()
	if f < 35e9 || f > 45e9 {
		t.Fatalf("VGG19 fwd FLOPs = %d, want ~39G", f)
	}
}

func TestVGG19FirstAndLastShapes(t *testing.T) {
	m := VGG19()
	wl := m.WeightLayers()
	if wl[1].Shape != "(64,64,224,224)" {
		t.Fatalf("conv1_2 shape = %s, want (64,64,224,224)", wl[1].Shape)
	}
	if wl[15].Shape != "(512,512,14,14)" {
		t.Fatalf("conv5_4 shape = %s, want (512,512,14,14)", wl[15].Shape)
	}
	if wl[17].Shape != "(4096,4096)" {
		t.Fatalf("fc7 shape = %s, want (4096,4096)", wl[17].Shape)
	}
	if !wl[18].CommIntensive || wl[0].CommIntensive {
		t.Fatal("FC layers must be comm-intensive, conv must not")
	}
}

func TestGoogLeNetStructure(t *testing.T) {
	m := GoogLeNet()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper numbering: 12 weight layers (L1-4, L5-9, L10-12 partition).
	if got := m.WeightLayerCount(); got != 12 {
		t.Fatalf("GoogLeNet weight layers = %d, want 12", got)
	}
	// GoogLeNet is far smaller and cheaper than VGG19.
	v := VGG19()
	if m.Params() >= v.Params()/10 {
		t.Fatalf("GoogLeNet params %d not << VGG19 %d", m.Params(), v.Params())
	}
	if m.FwdFLOPs() >= v.FwdFLOPs()/10 {
		t.Fatalf("GoogLeNet flops %d not << VGG19 %d", m.FwdFLOPs(), v.FwdFLOPs())
	}
}

func TestZooValidation(t *testing.T) {
	for _, name := range []string{"VGG19", "GoogLeNet", "LeNet-5", "AlexNet"} {
		m, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown model")
	}
}

func TestLeNet5AndAlexNetLayerCounts(t *testing.T) {
	if got := LeNet5().WeightLayerCount(); got != 5 {
		t.Errorf("LeNet-5 weight layers = %d, want 5", got)
	}
	if got := AlexNet().WeightLayerCount(); got != 8 {
		t.Errorf("AlexNet weight layers = %d, want 8", got)
	}
	// AlexNet ~61M params.
	p := AlexNet().Params()
	if p < 55e6 || p > 65e6 {
		t.Errorf("AlexNet params = %d, want ~61M", p)
	}
}

func TestConvGeometry(t *testing.T) {
	tests := []struct {
		spec         ConvSpec
		wantOut      int64
		wantParams   int64
		wantFwdFLOPs int64
	}{
		{
			// 1x1 conv keeps spatial size.
			ConvSpec{Name: "a", InC: 8, OutC: 4, InH: 10, InW: 10, Kernel: 1},
			4 * 10 * 10,
			8*4 + 4,
			2 * 10 * 10 * 4 * 8,
		},
		{
			// 3x3 pad 1 keeps spatial size.
			ConvSpec{Name: "b", InC: 3, OutC: 2, InH: 5, InW: 5, Kernel: 3, Pad: 1},
			2 * 5 * 5,
			3*2*9 + 2,
			2 * 5 * 5 * 2 * 3 * 9,
		},
		{
			// stride 2 halves (odd input).
			ConvSpec{Name: "c", InC: 1, OutC: 1, InH: 7, InW: 7, Kernel: 3, Stride: 2, Pad: 1},
			4 * 4,
			9 + 1,
			2 * 4 * 4 * 9,
		},
	}
	for _, tc := range tests {
		l := NewConv(tc.spec)
		if l.OutElems != tc.wantOut {
			t.Errorf("%s: OutElems = %d, want %d", tc.spec.Name, l.OutElems, tc.wantOut)
		}
		if l.Params != tc.wantParams {
			t.Errorf("%s: Params = %d, want %d", tc.spec.Name, l.Params, tc.wantParams)
		}
		if l.FwdFLOPs != tc.wantFwdFLOPs {
			t.Errorf("%s: FwdFLOPs = %d, want %d", tc.spec.Name, l.FwdFLOPs, tc.wantFwdFLOPs)
		}
	}
}

func TestFCCosts(t *testing.T) {
	l := NewFC("fc", 100, 10)
	if l.Params != 100*10+10 {
		t.Errorf("params = %d", l.Params)
	}
	if l.FwdFLOPs != 2*100*10 {
		t.Errorf("flops = %d", l.FwdFLOPs)
	}
	if l.BwdFLOPs() != 2*l.FwdFLOPs {
		t.Errorf("bwd = %d, want 2x fwd", l.BwdFLOPs())
	}
}

func TestLayerRange(t *testing.T) {
	m := VGG19()
	// L1-8: convs of blocks 1-3, including interleaved pools, plus the
	// trailing pool before block 4.
	sub := m.LayerRange(1, 8)
	weights := 0
	for _, l := range sub {
		if l.HasWeights() {
			weights++
		}
	}
	if weights != 8 {
		t.Fatalf("L1-8 contains %d weight layers, want 8", weights)
	}
	if sub[0].Name != "conv1_1" {
		t.Fatalf("first layer = %s, want conv1_1", sub[0].Name)
	}
	if last := sub[len(sub)-1]; last.Name != "pool3" {
		t.Fatalf("last layer = %s, want trailing pool3", last.Name)
	}
	// L17-19 are exactly the FC layers.
	fc := m.LayerRange(17, 19)
	if len(fc) != 3 || fc[0].Name != "fc6" || fc[2].Name != "fc8" {
		t.Fatalf("L17-19 = %v", names(fc))
	}
	// Chaining: L1-8 output elems == L9-16 input elems.
	mid := m.LayerRange(9, 16)
	if sub[len(sub)-1].OutElems != mid[0].InElems {
		t.Fatal("L1-8 does not chain into L9-16")
	}
}

func TestLayerRangePanics(t *testing.T) {
	m := VGG19()
	for _, rng := range [][2]int{{0, 3}, {5, 4}, {1, 99}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LayerRange(%d,%d) did not panic", rng[0], rng[1])
				}
			}()
			m.LayerRange(rng[0], rng[1])
		}()
	}
}

func TestSubModelAccounting(t *testing.T) {
	m := VGG19()
	sm1 := SubModel{Index: 0, Name: "SM-1", Layers: m.LayerRange(1, 8), FromLayer: 1, ToLayer: 8}
	sm2 := SubModel{Index: 1, Name: "SM-2", Layers: m.LayerRange(9, 16), FromLayer: 9, ToLayer: 16}
	sm3 := SubModel{Index: 2, Name: "SM-3", Layers: m.LayerRange(17, 19), FromLayer: 17, ToLayer: 19}
	if sm1.CommIntensive() || sm2.CommIntensive() {
		t.Error("conv sub-models must not be comm-intensive")
	}
	if !sm3.CommIntensive() {
		t.Error("FC sub-model must be comm-intensive")
	}
	total := sm1.Params() + sm2.Params() + sm3.Params()
	if total != m.Params() {
		t.Errorf("partition params %d != model params %d", total, m.Params())
	}
	// FC sub-model holds the overwhelming majority of parameters.
	if sm3.Params() < 8*sm1.Params() {
		t.Errorf("FC params %d should dwarf SM-1 %d", sm3.Params(), sm1.Params())
	}
	// SM-2 input is SM-1 output.
	if sm2.InBytes() != sm1.OutBytes() {
		t.Errorf("SM-2 in %d != SM-1 out %d", sm2.InBytes(), sm1.OutBytes())
	}
}

func TestTableI(t *testing.T) {
	rows := TableI()
	if len(rows) != 9 {
		t.Fatalf("Table I rows = %d, want 9", len(rows))
	}
	byName := map[string]int{}
	for _, r := range rows {
		byName[r.Model] = r.Layers
	}
	for name, layers := range map[string]int{
		"LeNet-5": 5, "VGG19": 19, "ResNet-152": 152, "CUImage": 1207,
	} {
		if byName[name] != layers {
			t.Errorf("%s layers = %d, want %d", name, byName[name], layers)
		}
	}
	// Years are non-decreasing (the table shows growth over time).
	for i := 1; i < len(rows); i++ {
		if rows[i].Year < rows[i-1].Year {
			t.Errorf("table not in chronological order at %s", rows[i].Model)
		}
	}
}

func TestKindString(t *testing.T) {
	if Conv.String() != "CONV" || FC.String() != "FC" || Pool.String() != "POOL" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind should include numeric value")
	}
}

func names(ls []Layer) []string {
	out := make([]string, len(ls))
	for i, l := range ls {
		out[i] = l.Name
	}
	return out
}

func TestResNet152Structure(t *testing.T) {
	m := ResNet152()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table I: 152 weight layers (1 stem + 50x3 bottleneck convs + 1 FC).
	if got := m.WeightLayerCount(); got != 152 {
		t.Fatalf("ResNet-152 weight layers = %d, want 152", got)
	}
	// ~60M parameters.
	if p := m.Params(); p < 50e6 || p > 70e6 {
		t.Errorf("ResNet-152 params = %d, want ~60M", p)
	}
	if _, err := ByName("ResNet-152"); err != nil {
		t.Error(err)
	}
}
