// Package model describes neural-network architectures at the granularity
// Fela schedules them: ordered layers with parameter counts, per-sample
// forward/backward FLOPs and activation sizes. It also ships the model
// zoo used throughout the paper (VGG19, GoogLeNet) plus the historical
// networks of Table I.
//
// Nothing in this package executes math; real execution lives in
// internal/minidnn (micro real training) and internal/gpu (cost model).
package model

import "fmt"

// Kind classifies a layer for scheduling purposes.
type Kind int

const (
	// Conv is a 2-D convolution, the compute-intensive kind.
	Conv Kind = iota
	// FC is a fully connected layer, the communication-intensive kind.
	FC
	// Pool is a parameter-free spatial pooling layer.
	Pool
	// Inception is a composite GoogLeNet inception module.
	Inception
	// Composite is an opaque layer with explicitly provided costs.
	Composite
)

// String returns the conventional name of the kind.
func (k Kind) String() string {
	switch k {
	case Conv:
		return "CONV"
	case FC:
		return "FC"
	case Pool:
		return "POOL"
	case Inception:
		return "INCEPTION"
	case Composite:
		return "COMPOSITE"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// BytesPerElement is the size of one parameter or activation element;
// the paper's prototypes train in float32.
const BytesPerElement = 4

// Layer is a flattened layer description. All per-sample quantities are
// computed eagerly by the constructors so downstream packages treat a
// Layer as plain data.
type Layer struct {
	// Name is unique within the model, e.g. "conv3_2".
	Name string
	// Kind classifies the layer.
	Kind Kind
	// Shape is the profile-repository key in the paper's
	// (Cin,Cout,H,W) notation for CONV or (In,Out) for FC. Pooling and
	// composite layers use a descriptive string.
	Shape string
	// Params is the number of trainable parameters.
	Params int64
	// FwdFLOPs is the forward floating-point cost for one sample.
	FwdFLOPs int64
	// InElems and OutElems are input/output activation element counts
	// for one sample.
	InElems  int64
	OutElems int64
	// CommIntensive marks layers whose synchronization cost dominates
	// their compute (FC layers, per §III-F).
	CommIntensive bool
}

// BwdFLOPs is the backward floating-point cost for one sample. Backward
// computes both input and weight gradients, conventionally twice the
// forward cost.
func (l Layer) BwdFLOPs() int64 { return 2 * l.FwdFLOPs }

// ParamBytes is the parameter footprint in bytes.
func (l Layer) ParamBytes() int64 { return l.Params * BytesPerElement }

// OutBytes is the activation output size in bytes for one sample.
func (l Layer) OutBytes() int64 { return l.OutElems * BytesPerElement }

// HasWeights reports whether the layer carries trainable parameters and
// therefore counts in the paper's layer numbering.
func (l Layer) HasWeights() bool { return l.Params > 0 }

// ConvSpec describes a 2-D convolution to the constructor.
type ConvSpec struct {
	Name                string
	InC, OutC           int
	InH, InW            int
	Kernel, Stride, Pad int
}

// NewConv builds a convolution layer. Output spatial size follows the
// usual floor((in + 2*pad - kernel)/stride) + 1 rule.
func NewConv(s ConvSpec) Layer {
	if s.Stride == 0 {
		s.Stride = 1
	}
	outH := (s.InH+2*s.Pad-s.Kernel)/s.Stride + 1
	outW := (s.InW+2*s.Pad-s.Kernel)/s.Stride + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("model: conv %q has non-positive output %dx%d", s.Name, outH, outW))
	}
	params := int64(s.OutC)*int64(s.InC)*int64(s.Kernel)*int64(s.Kernel) + int64(s.OutC)
	// 2 FLOPs (mul+add) per MAC.
	fwd := 2 * int64(outH) * int64(outW) * int64(s.OutC) * int64(s.InC) * int64(s.Kernel) * int64(s.Kernel)
	return Layer{
		Name:     s.Name,
		Kind:     Conv,
		Shape:    fmt.Sprintf("(%d,%d,%d,%d)", s.InC, s.OutC, s.InH, s.InW),
		Params:   params,
		FwdFLOPs: fwd,
		InElems:  int64(s.InC) * int64(s.InH) * int64(s.InW),
		OutElems: int64(s.OutC) * int64(outH) * int64(outW),
	}
}

// NewFC builds a fully connected layer mapping in features to out
// features.
func NewFC(name string, in, out int) Layer {
	return Layer{
		Name:          name,
		Kind:          FC,
		Shape:         fmt.Sprintf("(%d,%d)", in, out),
		Params:        int64(in)*int64(out) + int64(out),
		FwdFLOPs:      2 * int64(in) * int64(out),
		InElems:       int64(in),
		OutElems:      int64(out),
		CommIntensive: true,
	}
}

// NewPool builds a parameter-free pooling layer. FLOPs are one compare or
// add per input element — negligible but nonzero so timelines stay sane.
func NewPool(name string, c, inH, inW, kernel, stride int) Layer {
	outH := (inH-kernel)/stride + 1
	outW := (inW-kernel)/stride + 1
	return Layer{
		Name:     name,
		Kind:     Pool,
		Shape:    fmt.Sprintf("pool(%d,%d,%d)", c, inH, inW),
		FwdFLOPs: int64(c) * int64(inH) * int64(inW),
		InElems:  int64(c) * int64(inH) * int64(inW),
		OutElems: int64(c) * int64(outH) * int64(outW),
	}
}

// InceptionSpec describes a GoogLeNet inception module by its four branch
// widths, using the notation of the original paper: #1x1, #3x3 reduce,
// #3x3, #5x5 reduce, #5x5, pool proj.
type InceptionSpec struct {
	Name     string
	InC      int
	H, W     int
	C1       int // 1x1 branch
	C3r, C3  int // 3x3 reduce, 3x3
	C5r, C5  int // 5x5 reduce, 5x5
	PoolProj int // 1x1 after pooling
}

// OutC is the concatenated output channel count.
func (s InceptionSpec) OutC() int { return s.C1 + s.C3 + s.C5 + s.PoolProj }

// NewInception builds a composite inception layer whose costs are the sum
// of its internal convolutions at the module's spatial size.
func NewInception(s InceptionSpec) Layer {
	convs := []Layer{
		NewConv(ConvSpec{Name: s.Name + "/1x1", InC: s.InC, OutC: s.C1, InH: s.H, InW: s.W, Kernel: 1}),
		NewConv(ConvSpec{Name: s.Name + "/3x3r", InC: s.InC, OutC: s.C3r, InH: s.H, InW: s.W, Kernel: 1}),
		NewConv(ConvSpec{Name: s.Name + "/3x3", InC: s.C3r, OutC: s.C3, InH: s.H, InW: s.W, Kernel: 3, Pad: 1}),
		NewConv(ConvSpec{Name: s.Name + "/5x5r", InC: s.InC, OutC: s.C5r, InH: s.H, InW: s.W, Kernel: 1}),
		NewConv(ConvSpec{Name: s.Name + "/5x5", InC: s.C5r, OutC: s.C5, InH: s.H, InW: s.W, Kernel: 5, Pad: 2}),
		NewConv(ConvSpec{Name: s.Name + "/pp", InC: s.InC, OutC: s.PoolProj, InH: s.H, InW: s.W, Kernel: 1}),
	}
	var params, fwd int64
	for _, c := range convs {
		params += c.Params
		fwd += c.FwdFLOPs
	}
	return Layer{
		Name:     s.Name,
		Kind:     Inception,
		Shape:    fmt.Sprintf("incep(%d,%d,%d,%d)", s.InC, s.OutC(), s.H, s.W),
		Params:   params,
		FwdFLOPs: fwd,
		InElems:  int64(s.InC) * int64(s.H) * int64(s.W),
		OutElems: int64(s.OutC()) * int64(s.H) * int64(s.W),
	}
}

// NewComposite builds an opaque layer with explicit costs, used for
// skeleton models in Table I.
func NewComposite(name string, params, fwdFLOPs, inElems, outElems int64) Layer {
	return Layer{
		Name:     name,
		Kind:     Composite,
		Shape:    "composite(" + name + ")",
		Params:   params,
		FwdFLOPs: fwdFLOPs,
		InElems:  inElems,
		OutElems: outElems,
	}
}
