// Package metrics defines the evaluation quantities of §V — average
// throughput (AT, Eq. 3) and per-iteration delay (PID, Eq. 4) — plus
// small helpers for expressing improvements the way the paper reports
// them ("49.65%", "3.23x") and for rendering text tables.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// RunResult captures one training run of one system.
type RunResult struct {
	// System identifies the solution: "Fela", "DP", "MP", "HP".
	System string
	// Model is the benchmark name.
	Model string
	// TotalBatch is the per-iteration global batch size.
	TotalBatch int
	// Iterations is the number of iterations executed.
	Iterations int
	// TotalTime is the simulated seconds to complete all iterations.
	TotalTime float64
	// IterTimes are the per-iteration durations.
	IterTimes []float64
	// BytesSent is the total network payload injected.
	BytesSent int64
	// Comm breaks BytesSent down by cause where the engine tracks it
	// (currently the Fela engine): raw training samples pulled by
	// helpers, dependency activations, and parameter synchronization.
	Comm CommBreakdown
	// Faults records worker faults detected during the run (empty for
	// a clean run). Chaos experiments read these to confirm the engine
	// absorbed the injected failures.
	Faults []FaultEvent
}

// FaultEvent records one detected worker fault in a real-time or
// simulated run: who failed, when, at which protocol phase, and how the
// failure classified.
type FaultEvent struct {
	// Time is seconds since session start (wall clock for the
	// real-time engine, virtual time for the simulator).
	Time float64
	// Worker is the failed worker id, or -1 when the fault struck
	// before the peer identified itself.
	Worker int
	// Iter is the iteration during which the fault was detected.
	Iter int
	// Phase is the protocol phase: "register", "iteration" or
	// "shutdown".
	Phase string
	// Class is the transport-level classification: "timeout",
	// "peer-gone", "codec", "closed", "missing" (never registered) or
	// "protocol" (a well-formed message that violates the protocol
	// state machine).
	Class string
	// Detail carries the underlying error text.
	Detail string
}

// String renders the event for logs.
func (e FaultEvent) String() string {
	who := fmt.Sprintf("worker %d", e.Worker)
	if e.Worker < 0 {
		who = "unidentified worker"
	}
	return fmt.Sprintf("t=%.3fs iter=%d %s: %s during %s (%s)", e.Time, e.Iter, who, e.Class, e.Phase, e.Detail)
}

// Scale-event kinds: how a worker's membership changed.
const (
	// ScaleJoin is a worker admitted into a running session.
	ScaleJoin = "join"
	// ScaleLeave is a graceful drain completed at an iteration barrier.
	ScaleLeave = "leave"
	// ScaleEvict is a coordinator-initiated removal (e.g. the elastic
	// controller scaling the session down).
	ScaleEvict = "evict"
	// ScaleReassign is a migration request sent to a worker: asked to
	// move to another job, it answers with a drain, so a reassign event
	// is always followed by a leave for the same worker once the drain
	// completes.
	ScaleReassign = "reassign"
)

// ScaleEvent records one elastic-membership change: a worker joining,
// draining out, or being evicted. Changes are applied at iteration
// barriers, so Iter is the first iteration the new membership is in
// effect (a joiner's first pull, the first iteration without a leaver).
type ScaleEvent struct {
	// Time is seconds since session start.
	Time float64
	// Iter is the first iteration run under the changed membership.
	Iter int
	// Worker is the joining or departing worker id.
	Worker int
	// Kind is ScaleJoin, ScaleLeave, ScaleEvict or ScaleReassign.
	Kind string
}

// String renders the event for logs.
func (e ScaleEvent) String() string {
	return fmt.Sprintf("t=%.3fs iter=%d worker %d: %s", e.Time, e.Iter, e.Worker, e.Kind)
}

// ScaleSequence compresses events to the (Kind, Worker) order they
// occurred in, the form elasticity tests assert against.
func ScaleSequence(events []ScaleEvent) []string {
	out := make([]string, len(events))
	for i, e := range events {
		out[i] = fmt.Sprintf("%s:%d", e.Kind, e.Worker)
	}
	return out
}

// FaultStats aggregates fault events for reporting.
type FaultStats struct {
	// Total is the number of fault events.
	Total int
	// ByClass counts events per classification.
	ByClass map[string]int
	// Workers lists the distinct failed worker ids, ascending
	// (excluding -1).
	Workers []int
}

// SummarizeFaults aggregates a fault log.
func SummarizeFaults(events []FaultEvent) FaultStats {
	st := FaultStats{Total: len(events), ByClass: map[string]int{}}
	seen := map[int]bool{}
	for _, e := range events {
		st.ByClass[e.Class]++
		if e.Worker >= 0 && !seen[e.Worker] {
			seen[e.Worker] = true
			st.Workers = append(st.Workers, e.Worker)
		}
	}
	sort.Ints(st.Workers)
	return st
}

// CommBreakdown categorizes wire traffic.
type CommBreakdown struct {
	// SampleBytes is raw training-sample migration (helpers training
	// another worker's shard — the FlexRR-style cost Fela keeps small).
	SampleBytes int64
	// ActivationBytes is dependency-output fetching between sub-models.
	ActivationBytes int64
	// SyncBytes is parameter synchronization (all-reduce wire bytes).
	SyncBytes int64
}

// Total sums the categories.
func (c CommBreakdown) Total() int64 {
	return c.SampleBytes + c.ActivationBytes + c.SyncBytes
}

// AvgThroughput computes Eq. 3: totalBatch · iterN / totalTime, in
// samples per second.
func (r RunResult) AvgThroughput() float64 {
	if r.TotalTime <= 0 {
		return 0
	}
	return float64(r.TotalBatch) * float64(r.Iterations) / r.TotalTime
}

// AvgIterTime is the mean per-iteration duration in seconds.
func (r RunResult) AvgIterTime() float64 {
	if r.Iterations == 0 {
		return 0
	}
	return r.TotalTime / float64(r.Iterations)
}

// PID computes Eq. 4 between a straggler-scenario run and its
// non-straggler counterpart: (totalTime_s − totalTime_0) / iterN.
func PID(stragglerRun, baseline RunResult) float64 {
	if stragglerRun.Iterations == 0 {
		return 0
	}
	return (stragglerRun.TotalTime - baseline.TotalTime) / float64(stragglerRun.Iterations)
}

// Speedup returns a/b as a throughput ratio (how many times faster a is
// than b in AT).
func Speedup(a, b RunResult) float64 {
	bt := b.AvgThroughput()
	if bt == 0 {
		return 0
	}
	return a.AvgThroughput() / bt
}

// Improvement returns the relative throughput improvement of a over b
// (0.15 = 15 % faster).
func Improvement(a, b RunResult) float64 { return Speedup(a, b) - 1 }

// FormatImprovement renders a relative improvement the way the paper
// does: below +100 % as a percentage ("49.65%"), above as a factor
// ("3.23x").
func FormatImprovement(rel float64) string {
	if rel < 1 {
		return fmt.Sprintf("%.2f%%", rel*100)
	}
	return fmt.Sprintf("%.2fx", rel)
}

// Table is a simple text table for experiment output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// MinMax returns the smallest and largest values of a series.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Normalize rescales a series to [0,1] the way Figure 6(a) does:
// (x − min) / (max − min). A constant series maps to all zeros.
func Normalize(xs []float64) []float64 {
	min, max := MinMax(xs)
	out := make([]float64, len(xs))
	if max == min {
		return out
	}
	// Halve before subtracting so the span cannot overflow for extreme
	// inputs; the ratio is unchanged.
	span := max/2 - min/2
	for i, x := range xs {
		out[i] = (x/2 - min/2) / span
	}
	return out
}
