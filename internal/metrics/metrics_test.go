package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAvgThroughputEq3(t *testing.T) {
	r := RunResult{TotalBatch: 128, Iterations: 100, TotalTime: 64}
	// 128 * 100 / 64 = 200 samples/s.
	if got := r.AvgThroughput(); got != 200 {
		t.Errorf("AT = %v, want 200", got)
	}
	if got := (RunResult{}).AvgThroughput(); got != 0 {
		t.Errorf("zero run AT = %v", got)
	}
}

func TestAvgIterTime(t *testing.T) {
	r := RunResult{Iterations: 50, TotalTime: 25}
	if got := r.AvgIterTime(); got != 0.5 {
		t.Errorf("avg iter = %v", got)
	}
	if got := (RunResult{}).AvgIterTime(); got != 0 {
		t.Errorf("zero run avg iter = %v", got)
	}
}

func TestPIDEq4(t *testing.T) {
	base := RunResult{Iterations: 100, TotalTime: 100}
	strag := RunResult{Iterations: 100, TotalTime: 150}
	if got := PID(strag, base); got != 0.5 {
		t.Errorf("PID = %v, want 0.5", got)
	}
	if got := PID(RunResult{}, base); got != 0 {
		t.Errorf("degenerate PID = %v", got)
	}
}

func TestSpeedupAndImprovement(t *testing.T) {
	a := RunResult{TotalBatch: 100, Iterations: 1, TotalTime: 1}   // 100/s
	b := RunResult{TotalBatch: 100, Iterations: 1, TotalTime: 2.5} // 40/s
	if got := Speedup(a, b); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("speedup = %v, want 2.5", got)
	}
	if got := Improvement(a, b); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("improvement = %v, want 1.5", got)
	}
	if got := Speedup(a, RunResult{}); got != 0 {
		t.Errorf("speedup vs zero = %v", got)
	}
}

func TestFormatImprovement(t *testing.T) {
	tests := []struct {
		rel  float64
		want string
	}{
		{0.4965, "49.65%"},
		{0.0998, "9.98%"},
		{2.23, "2.23x"},
		{1.0, "1.00x"},
	}
	for _, tc := range tests {
		if got := FormatImprovement(tc.rel); got != tc.want {
			t.Errorf("FormatImprovement(%v) = %q, want %q", tc.rel, got, tc.want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "Demo", Headers: []string{"name", "v"}}
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22")
	s := tb.String()
	if !strings.Contains(s, "Demo") || !strings.Contains(s, "alpha") {
		t.Errorf("table output missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("table has %d lines, want 5:\n%s", len(lines), s)
	}
	// Columns align: every non-title line has the same prefix width
	// before the second column.
	idx := strings.Index(lines[1], "v")
	for _, ln := range lines[2:] {
		if len(ln) < idx {
			t.Errorf("short line %q", ln)
		}
	}
}

func TestNormalizeFig6a(t *testing.T) {
	xs := []float64{10, 20, 15}
	got := Normalize(xs)
	want := []float64{0, 1, 0.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Normalize = %v, want %v", got, want)
		}
	}
	// Constant series normalizes to zeros, not NaN.
	for _, v := range Normalize([]float64{3, 3, 3}) {
		if v != 0 {
			t.Error("constant series must normalize to 0")
		}
	}
	if len(Normalize(nil)) != 0 {
		t.Error("nil series")
	}
}

func TestNormalizeProperties(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		ys := Normalize(xs)
		for _, y := range ys {
			if y < 0 || y > 1 || math.IsNaN(y) {
				return false
			}
		}
		return len(ys) == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{5, -2, 7, 0})
	if min != -2 || max != 7 {
		t.Errorf("MinMax = %v,%v", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Errorf("empty MinMax = %v,%v", min, max)
	}
}

func TestFaultEventString(t *testing.T) {
	e := FaultEvent{Time: 1.25, Worker: 3, Iter: 2, Phase: "iteration", Class: "timeout", Detail: "deadline expired"}
	s := e.String()
	for _, want := range []string{"worker 3", "timeout", "iteration", "iter=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("FaultEvent.String() = %q, missing %q", s, want)
		}
	}
	anon := FaultEvent{Worker: -1, Phase: "register", Class: "peer-gone"}
	if !strings.Contains(anon.String(), "unidentified") {
		t.Errorf("anonymous fault string = %q", anon.String())
	}
}

func TestSummarizeFaults(t *testing.T) {
	events := []FaultEvent{
		{Worker: 2, Class: "timeout"},
		{Worker: 2, Class: "peer-gone"},
		{Worker: 0, Class: "timeout"},
		{Worker: -1, Class: "missing"},
	}
	st := SummarizeFaults(events)
	if st.Total != 4 {
		t.Errorf("Total = %d", st.Total)
	}
	if st.ByClass["timeout"] != 2 || st.ByClass["peer-gone"] != 1 || st.ByClass["missing"] != 1 {
		t.Errorf("ByClass = %v", st.ByClass)
	}
	if len(st.Workers) != 2 || st.Workers[0] != 0 || st.Workers[1] != 2 {
		t.Errorf("Workers = %v (want [0 2])", st.Workers)
	}
	empty := SummarizeFaults(nil)
	if empty.Total != 0 || len(empty.Workers) != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestScaleEventString(t *testing.T) {
	ev := ScaleEvent{Time: 1.25, Iter: 4, Worker: 2, Kind: ScaleJoin}
	s := ev.String()
	for _, want := range []string{"join", "worker 2", "iter=4"} {
		if !strings.Contains(s, want) {
			t.Errorf("ScaleEvent string %q missing %q", s, want)
		}
	}
}

func TestScaleSequence(t *testing.T) {
	events := []ScaleEvent{
		{Iter: 2, Worker: 3, Kind: ScaleJoin},
		{Iter: 5, Worker: 0, Kind: ScaleLeave},
		{Iter: 6, Worker: 1, Kind: ScaleEvict},
	}
	got := ScaleSequence(events)
	want := []string{"join:3", "leave:0", "evict:1"}
	if len(got) != len(want) {
		t.Fatalf("ScaleSequence = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ScaleSequence = %v, want %v", got, want)
		}
	}
	if out := ScaleSequence(nil); len(out) != 0 {
		t.Errorf("ScaleSequence(nil) = %v", out)
	}
}
