module fela

go 1.22
