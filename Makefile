GO ?= go

.PHONY: build test tier1 vet race fuzz chaos elastic-chaos obs jobs bench cluster gate stat durable kernels lint-metrics ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# tier1 is the contract every change must keep green.
tier1: build test

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# chaos runs the fault-injection suite alone, repeated to shake out
# scheduling-dependent behaviour.
chaos:
	$(GO) test ./internal/rt/ -run 'TestChaos' -count=3 -v

# elastic-chaos runs the live-membership suite (scripted joins, drains,
# evictions, drain-racing-death) under the race detector, repeated to
# shake out scheduling-dependent behaviour.
elastic-chaos:
	$(GO) test ./internal/rt/ ./internal/elastic/ -run 'TestElastic|TestRetuner|TestController' -race -count=3 -v

# obs runs the telemetry suite under the race detector: the registry
# hammer, the exposition golden file, span propagation, the HTTP
# endpoints, the rt status feed, and the TCP e2e scrape test.
obs:
	$(GO) test ./internal/obs/ -race -count=1 -v
	$(GO) test ./internal/rt/ -race -run 'TestStatus|TestSessionTelemetry|TestTelemetryOff' -v
	$(GO) test ./cmd/felaserver/ -race -run TestServerObservabilityE2E -v

# jobs runs the multi-tenant suite under the race detector: the manager
# unit/integration tests (including the migration chaos tests), the
# felaserver -jobs TCP e2e path, and the multijob example.
jobs:
	$(GO) test ./internal/jobs/ -race -count=1 -v
	$(GO) test ./cmd/felaserver/ -race -run TestServerJobsMode -v
	$(GO) test ./examples/multijob/ -race -count=1

# fuzz runs each wire-codec fuzz target for a short budget on top of the
# committed corpus (which plain `go test` already replays).
fuzz:
	$(GO) test ./internal/transport/ -run xxx -fuzz FuzzWireDecode -fuzztime 10s
	$(GO) test ./internal/transport/ -run xxx -fuzz FuzzWireRoundTrip -fuzztime 10s
	$(GO) test ./internal/transport/ -run xxx -fuzz FuzzBinaryDecode -fuzztime 10s
	$(GO) test ./internal/transport/ -run xxx -fuzz FuzzBinaryRoundTrip -fuzztime 10s

# bench smoke-runs the hot-path benchmarks (wire codecs, matmul
# kernels) at -benchtime 100x: enough to catch a broken benchmark or a
# pathological regression without turning CI into a perf lab.
bench:
	$(GO) test ./internal/transport/ -run xxx -bench 'BenchmarkCodec' -benchtime 100x
	$(GO) test ./internal/tensor/ -run xxx -bench 'BenchmarkMatMul' -benchtime 100x

# cluster smoke-runs the cluster-mode experiment (100-job Poisson trace
# against a TokenDelay pool, one pass per scheduling configuration) and
# writes BENCH_cluster.json. The full 1000-job run is `go run
# ./cmd/felabench -experiment cluster` without -quick.
cluster:
	$(GO) run ./cmd/felabench -quick -experiment cluster

# gate runs the serving-gateway suite under the race detector (unit
# tests, the 64-tenant hammer, the felagate binary's serve/drain e2e
# tests) and then smoke-runs the million-request edge benchmark,
# writing BENCH_gate.json.
gate:
	$(GO) test ./internal/gate/ -race -count=1 -v
	$(GO) test ./cmd/felagate/ -race -count=1 -v
	$(GO) run ./cmd/felabench -quick -experiment gate

# stat runs the cluster observability aggregator suite under the race
# detector: felastat -json against a live two-shard gateway (tenant
# burn rates, shard admission ledgers, the worker straggler heatmap).
stat:
	$(GO) test ./cmd/felastat/ -race -count=1 -v

# durable runs the durability-plane suite under the race detector: the
# record/ledger/store unit tests with their golden frames and fuzz
# corpora, the rt kill-at-every-protocol-state chaos matrix, the
# manager crash-recovery tests (multi-job lease state, bit-identical
# resume), and the felaserver restart-and-resume + felaworker
# -reconnect e2e paths.
durable:
	$(GO) test ./internal/durable/ -race -count=1 -v
	$(GO) test ./internal/rt/ -race -run 'TestChaosCoordinatorKillEveryProtocolState|TestChaosKillAtEveryIteration' -count=1 -v
	$(GO) test ./internal/jobs/ -race -run 'TestManagerCrashRecovery|TestManagerRestore|TestManagerSubmitRefused' -count=1 -v
	$(GO) test ./cmd/felaserver/ -race -run TestServerDurableSessionResume -count=1 -v
	$(GO) test ./cmd/felaworker/ -race -run TestReconnect -count=1 -v

# kernels runs the parallel compute-kernel and gradient-compression
# suites under the race detector: bit-identity across fan-out widths,
# the fp16/int8/topk codec properties with their golden v2 frames and
# hostile-header cases, and the negotiated end-to-end TCP sessions.
kernels:
	$(GO) test ./internal/tensor/ -race -count=1 -v
	$(GO) test ./internal/minidnn/ -race -run 'TestConv|TestParallel' -count=1 -v
	$(GO) test ./internal/transport/ -race -run 'TestFP16|TestInt8|TestTopK|TestCompress|TestParamsStayExact' -count=1 -v
	$(GO) test ./internal/rt/ -race -run 'TestCompress' -count=1 -v

# lint-metrics is the exposition-conformance gate: every e2e test that
# scrapes /metrics (felaserver observability, felastat live cluster)
# runs the body through obs.LintExposition, so a malformed sample or
# exemplar line fails here.
lint-metrics:
	$(GO) test ./internal/obs/ -run 'TestLint|TestParse|TestExemplar' -count=1 -v
	$(GO) test ./cmd/felaserver/ -run TestServerObservabilityE2E -count=1
	$(GO) test ./cmd/felastat/ -run TestFelastatLiveTwoShardCluster -count=1

# ci is the full gate: tier-1, static analysis, race detector, the
# multi-tenant suite, the benchmark smoke pass, the cluster-mode smoke
# run, the serving-gateway suite, the observability aggregator, the
# durability plane, and the compute-kernel/compression suite.
ci: tier1 vet race jobs bench cluster gate stat durable kernels
