package fela_test

import (
	"fmt"

	"fela"
)

// ExamplePartition shows the offline bin-partitioned method on VGG19
// (§IV-A): three sub-models with increasing threshold batch sizes.
func ExamplePartition() {
	for _, sm := range fela.Partition(fela.VGG19()) {
		fmt.Printf("%s threshold=%d\n", sm.Name, sm.ThresholdBatch)
	}
	// Output:
	// VGG19/SM-1[L1-8] threshold=16
	// VGG19/SM-2[L9-16] threshold=64
	// VGG19/SM-3[L17-19] threshold=2048
}

// ExampleSimulate runs a short Fela training with an explicit
// configuration; the simulator is deterministic, so the throughput is
// stable across runs.
func ExampleSimulate() {
	res, err := fela.Simulate(fela.SimConfig{
		Model: fela.VGG19(), TotalBatch: 128, Iterations: 4,
		Weights: []int{1, 1, 8}, SubsetSize: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("iterations=%d samples=%d positive-throughput=%v\n",
		res.Iterations, res.TotalBatch, res.AvgThroughput() > 0)
	// Output:
	// iterations=4 samples=128 positive-throughput=true
}

// ExampleRTTrain demonstrates the reproducibility guarantee: real
// distributed training through the token scheduler matches sequential
// SGD bit for bit.
func ExampleRTTrain() {
	mk := func() *fela.Network { return fela.NewMLP(1, 4, 8, 2) }
	ds := fela.SyntheticDataset(2, 32, 4, 2)
	cfg := fela.RTConfig{Workers: 2, TotalBatch: 16, TokenBatch: 4, Iterations: 3, LR: 0.1}

	dist, err := fela.RTTrain(mk, ds, cfg)
	if err != nil {
		panic(err)
	}
	seq, err := fela.RTSequential(mk(), ds, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("bit-identical:", fela.ParamsEqual(dist, seq))
	// Output:
	// bit-identical: true
}

// ExampleRoundRobinStraggler shows the Figure 9 scenario: worker
// (iteration mod N) sleeps d seconds.
func ExampleRoundRobinStraggler() {
	s := fela.RoundRobinStraggler(6, 8)
	fmt.Println(s.Delay(3, 3), s.Delay(3, 4))
	// Output:
	// 6 0
}
