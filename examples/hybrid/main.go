// Hybrid-parallel comparison: a miniature Figure 8 — Fela against the
// data-parallel (DP), model-parallel (MP) and hybrid-parallel (HP)
// baselines on both benchmarks, across batch sizes.
package main

import (
	"fmt"
	"log"

	"fela"
)

func main() {
	const iters = 20
	for _, m := range []*fela.Model{fela.VGG19(), fela.GoogLeNet()} {
		fmt.Printf("%s (AT in samples/s, %d iterations)\n", m.Name, iters)
		fmt.Printf("%8s %10s %10s %10s %10s %9s %9s %9s\n",
			"batch", "Fela", "DP", "MP", "HP", "F/DP", "F/MP", "F/HP")
		for _, batch := range []int{64, 256, 1024} {
			cmp, err := fela.Compare(m, batch, iters, nil)
			if err != nil {
				log.Fatal(err)
			}
			f := cmp.Fela.AvgThroughput()
			fmt.Printf("%8d %10.1f %10.1f %10.1f %10.1f %8.2fx %8.2fx %8.2fx\n",
				batch, f,
				cmp.DP.AvgThroughput(), cmp.MP.AvgThroughput(), cmp.HP.AvgThroughput(),
				f/cmp.DP.AvgThroughput(), f/cmp.MP.AvgThroughput(), f/cmp.HP.AvgThroughput())
		}
		fmt.Println()
	}
	fmt.Println("paper (100 iters): Fela beats DP by up to 3.23x, MP by up to 12.22x, HP by up to 1.85x")
}
