// Straggler mitigation: reproduce the shape of Figures 9 and 10 at small
// scale — round-robin and probability-based stragglers, comparing Fela's
// reactive token pull against the DP baseline on throughput and
// per-iteration delay (Eq. 4).
package main

import (
	"fmt"
	"log"

	"fela"
)

func main() {
	m := fela.VGG19()
	const batch, iters = 256, 20

	base, err := fela.Compare(m, batch, iters, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("non-straggler baseline: Fela %.1f samples/s, DP %.1f samples/s\n\n",
		base.Fela.AvgThroughput(), base.DP.AvgThroughput())

	fmt.Println("round-robin stragglers (one worker slowed by d each iteration):")
	fmt.Printf("%8s %12s %12s %12s %12s\n", "d (s)", "Fela AT", "DP AT", "Fela PID", "DP PID")
	for _, d := range []float64{2, 6, 10} {
		cmp, err := fela.Compare(m, batch, iters, fela.RoundRobinStraggler(d, 8))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.0f %12.1f %12.1f %11.2fs %11.2fs\n", d,
			cmp.Fela.AvgThroughput(), cmp.DP.AvgThroughput(),
			fela.PID(cmp.Fela, base.Fela), fela.PID(cmp.DP, base.DP))
	}

	fmt.Println("\nprobability-based stragglers (each worker slowed by 6 s with probability p):")
	fmt.Printf("%8s %12s %12s %12s %12s\n", "p", "Fela AT", "DP AT", "Fela PID", "DP PID")
	for _, p := range []float64{0.1, 0.3, 0.5} {
		cmp, err := fela.Compare(m, batch, iters, fela.ProbabilityStraggler(p, 6))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.1f %12.1f %12.1f %11.2fs %11.2fs\n", p,
			cmp.Fela.AvgThroughput(), cmp.DP.AvgThroughput(),
			fela.PID(cmp.Fela, base.Fela), fela.PID(cmp.DP, base.DP))
	}
	fmt.Println("\nFela's workers pull tokens reactively, so helpers absorb a straggler's")
	fmt.Println("backlog instead of the whole cluster waiting at the BSP barrier (§III-C).")
}
