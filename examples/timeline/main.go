// Timeline: visualize Fela's token schedule as an ASCII Gantt chart —
// two iterations of VGG19 training, first without and then with a
// straggler, showing compute (C), fetches (F), synchronizations (S) and
// the injected sleep (Z), and how helpers absorb the straggler's work.
package main

import (
	"fmt"
	"log"

	"fela"
)

func main() {
	base := fela.SimConfig{
		Model: fela.VGG19(), TotalBatch: 256, Iterations: 2,
		Weights: []int{1, 1, 8}, SubsetSize: 1,
	}

	_, tr, err := fela.SimulateTraced(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fela schedule, no stragglers (VGG19, batch 256, 2 iterations):")
	fmt.Print(tr.Timeline(100))

	withStraggler := base
	withStraggler.Scenario = fela.RoundRobinStraggler(2, 8)
	_, tr2, err := fela.SimulateTraced(withStraggler)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsame run with a 2s round-robin straggler (Z = injected sleep):")
	fmt.Print(tr2.Timeline(100))
	fmt.Println("\nnote how the sleeping worker's row shows Z while the others keep")
	fmt.Println("computing — its tokens were pulled by helpers (HF policy, §III-E).")
}
