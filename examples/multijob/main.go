// Multi-tenant training: one shared worker pool, two concurrent jobs,
// and a live migration between them. Four pool workers register once
// with a job manager; job "alpha" arrives first and takes the whole
// pool, then "beta" arrives and the fair-share policy reassigns two of
// alpha's workers — each migration is an ordinary elastic drain out of
// alpha, a re-registration with the pool, and a join into beta at one
// of beta's barriers. Both final models are verified bit-for-bit
// against the same jobs trained alone: the manager decides who computes,
// never what is computed.
package main

import (
	"fmt"
	"log"
	"time"

	"fela/internal/jobs"
	"fela/internal/minidnn"
	"fela/internal/obs"
	"fela/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	reg := obs.NewRegistry()
	mgr := jobs.NewManager(jobs.Config{
		Policy:  jobs.FairShare{},
		Tick:    20 * time.Millisecond,
		Metrics: reg,
	})

	// Four pool workers, connected over in-process pipes (felaworker
	// -pool does the same over TCP). The per-token sleep stands in for a
	// heavier model so the two jobs genuinely overlap.
	const poolWorkers = 4
	dial := func() (transport.Conn, error) {
		select {
		case <-mgr.Done():
			return nil, fmt.Errorf("pool stopped")
		default:
		}
		a, b := transport.Pair()
		mgr.Admit(b)
		return a, nil
	}
	workersDone := make(chan error, poolWorkers)
	for i := 0; i < poolWorkers; i++ {
		go func() {
			_, err := jobs.RunPoolWorker(dial, jobs.PoolWorkerOptions{
				TokenDelay: func(int, int) time.Duration { return 500 * time.Microsecond },
			})
			workersDone <- err
		}()
	}

	// Alpha arrives on an empty pool and starts on all four workers;
	// beta arrives mid-flight, and the rebalance migrates two of them.
	alpha := transport.JobSpec{Name: "alpha", Iterations: 60, TotalBatch: 128, TokenBatch: 8, Seed: 0}
	beta := transport.JobSpec{Name: "beta", Iterations: 40, TotalBatch: 64, TokenBatch: 8, Seed: 3}

	alphaCh, err := mgr.Submit(alpha)
	if err != nil {
		return err
	}
	time.Sleep(60 * time.Millisecond) // let alpha take the whole pool first
	betaCh, err := mgr.Submit(beta)
	if err != nil {
		return err
	}

	for _, ch := range []<-chan jobs.JobResult{alphaCh, betaCh} {
		r := <-ch
		if r.Err != nil {
			return fmt.Errorf("job %s: %w", r.Spec.Name, r.Err)
		}
		ref, err := jobs.Reference(r.Spec)
		if err != nil {
			return err
		}
		verdict := "DIVERGED from solo training"
		if minidnn.ParamsEqual(ref.Params, r.Result.Params) {
			verdict = "BIT-IDENTICAL to solo training"
		}
		fmt.Printf("job %d (%s): %d iters, final loss %.6f, queued %.0fms, ran %.0fms, %d worker-iters — %s\n",
			r.ID, r.Spec.Name, r.Spec.Iterations, r.Result.Losses[len(r.Result.Losses)-1],
			float64(r.QueueWait.Milliseconds()), float64(r.Runtime.Milliseconds()),
			r.WorkerIters, verdict)
	}

	mgr.Stop()
	<-mgr.Done()
	for i := 0; i < poolWorkers; i++ {
		if err := <-workersDone; err != nil {
			return fmt.Errorf("pool worker: %w", err)
		}
	}

	fmt.Println("\npool activity (from the manager's /metrics counters):")
	for _, name := range []string{
		jobs.MetricLeases, jobs.MetricReleases, jobs.MetricReturns,
		jobs.MetricRebalances, jobs.MetricCompleted,
	} {
		for labels, v := range reg.CounterValues(name) {
			if labels != "" {
				labels = "{" + labels + "}"
			}
			fmt.Printf("  %s%s = %d\n", name, labels, v)
		}
	}
	fmt.Println("\nevery worker movement above was an elastic drain + pool rejoin —")
	fmt.Println("the jobs never noticed beyond their scale events.")
	return nil
}
