package main

import "testing"

// TestMultijobExample smoke-tests the demo end to end: two concurrent
// jobs on one pool, a mid-flight migration, and both bit-identity
// verifications all inside run().
func TestMultijobExample(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
