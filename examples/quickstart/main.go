// Quickstart: partition VGG19 with the paper's bin-partitioned method,
// run one tuned Fela training on the simulated 8-node testbed, and print
// the measured throughput.
package main

import (
	"fmt"
	"log"

	"fela"
)

func main() {
	m := fela.VGG19()
	fmt.Printf("model: %s — %d weight layers, %.1f M parameters\n",
		m.Name, m.WeightLayerCount(), float64(m.Params())/1e6)

	// Offline model partition (§IV-A): bins of threshold batch sizes.
	for _, sm := range fela.Partition(m) {
		fmt.Printf("  %-22s threshold batch %4d, %7.1f MB parameters\n",
			sm.Name, sm.ThresholdBatch, float64(sm.ParamBytes())/1e6)
	}

	// Tuned Fela run: the two-phase tuner (§IV-B) picks the parallelism
	// weights and the CTD conditional subset, then 20 BSP iterations run
	// under the full ADS+HF+CTD policy stack.
	res, err := fela.Simulate(fela.SimConfig{
		Model:      m,
		TotalBatch: 256,
		Iterations: 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFela on the 8-node K40c testbed, batch 256:\n")
	fmt.Printf("  avg iteration time: %.3f s\n", res.AvgIterTime())
	fmt.Printf("  avg throughput:     %.1f samples/s (Eq. 3)\n", res.AvgThroughput())
	fmt.Printf("  network payload:    %.0f MB/iteration\n",
		float64(res.BytesSent)/float64(res.Iterations)/1e6)
}
