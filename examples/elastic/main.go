// Elastic membership: one training session that scales 2 -> 4 -> 1
// workers while it runs. Two workers start the session; two more join at
// the first iteration barrier (admitted by the elastic controller); near
// the end three workers drain out gracefully, leaving one survivor to
// finish. The online re-tuner reshapes the token distribution from live
// per-iteration timings after every scale event, and the final model is
// verified bit-for-bit against sequential SGD — membership changes who
// computes, never what is computed.
package main

import (
	"fmt"
	"log"
	"time"

	"fela/internal/elastic"
	"fela/internal/metrics"
	"fela/internal/minidnn"
	"fela/internal/rt"
	"fela/internal/trace"
	"fela/internal/transport"
)

func mk() *minidnn.Network  { return minidnn.NewMLP(42, 16, 32, 4) }
func data() *minidnn.Dataset { return minidnn.SyntheticBlobs(7, 256, 16, 4) }

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctrl, err := elastic.NewController(elastic.Config{MinWorkers: 1})
	if err != nil {
		return err
	}
	tr := &trace.Trace{}
	cfg := rt.Config{
		Workers:       2,
		TotalBatch:    64,
		TokenBatch:    8,
		Iterations:    12,
		LR:            0.05,
		WorkerTimeout: 2 * time.Second,
		Elastic:       ctrl,
		Trace:         tr,
		// The founding workers yield a little each iteration so the
		// joiners demonstrably train; workers 0, 2 and 3 drain out at
		// iteration 8, scaling the session down to worker 1 alone.
		Delay: func(iter, wid int) time.Duration {
			if wid <= 1 {
				return 5 * time.Millisecond
			}
			return 0
		},
		Drain: func(iter, wid int) bool {
			return iter >= 8 && wid != 1
		},
	}

	co, err := rt.NewCoordinator(mk(), cfg)
	if err != nil {
		return err
	}

	// The two founding workers.
	conns := make([]transport.Conn, cfg.Workers)
	for wid := 0; wid < cfg.Workers; wid++ {
		server, client := transport.Pair()
		conns[wid] = server
		w := rt.NewWorker(wid, mk(), data(), cfg)
		go func() { _ = w.Run(client) }()
	}
	// Two joiners, connected before the session starts; the controller
	// admits them at the first iteration barrier, and their first
	// iter-start delivers the current model snapshot.
	for i := 0; i < 2; i++ {
		server, client := transport.Pair()
		if err := co.Admit(server); err != nil {
			return err
		}
		go func() { _, _ = rt.Join(client, mk(), data(), cfg) }()
	}

	res, err := co.Run(conns)
	if err != nil {
		return err
	}

	fmt.Println("elastic session: 2 workers -> 4 (join at barrier 0) -> 1 (drains at barrier 8)")
	for i := 0; i < len(res.Losses); i += 3 {
		fmt.Printf("  iteration %2d: loss %.6f\n", i, res.Losses[i])
	}
	fmt.Printf("\nscale events: %v\n", metrics.ScaleSequence(res.Scales))
	for _, ev := range res.Scales {
		fmt.Println("  " + ev.String())
	}
	fmt.Printf("tokens per worker: %v (steals: %d, reassigned: %d)\n",
		res.TokensByWorker, res.Steals, res.Reassigned)

	ret := ctrl.Retuner()
	fmt.Printf("\nonline re-tunes: %d (bounded two-phase search on live timings)\n", ret.Retunes())
	for _, c := range ret.Cases() {
		fmt.Println("  case " + c.String())
	}
	fmt.Printf("final shares: %v\n", ret.Shares())

	fmt.Println("\ntimeline (J=join L=leave):")
	fmt.Println(tr.Timeline(76))

	seq, err := sequential(cfg)
	if err != nil {
		return err
	}
	if !minidnn.ParamsEqual(seq.Params, res.Params) {
		return fmt.Errorf("elastic training diverged from the sequential reference")
	}
	fmt.Println("verified: the elastically-scaled result is BIT-IDENTICAL to sequential SGD.")
	return nil
}

// sequential runs the reference computation with the same arithmetic
// configuration (membership hooks are ignored by Sequential).
func sequential(cfg rt.Config) (*rt.Result, error) {
	return rt.Sequential(mk(), data(), cfg)
}
