package main

import "testing"

// TestElasticExample smoke-tests the demo end to end: joins, drains,
// re-tuning, and the bit-identity verification all inside run().
func TestElasticExample(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
