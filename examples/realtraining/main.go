// Real training: run actual gradient descent through Fela's token
// scheduler — four goroutine workers pulling data tokens, one of them a
// deliberate straggler — and verify bit-for-bit that the result equals
// sequential SGD (the paper's algorithm-reproducibility claim,
// Table II).
package main

import (
	"fmt"
	"log"
	"time"

	"fela"
)

func main() {
	mk := func() *fela.Network { return fela.NewMLP(42, 16, 32, 4) }
	ds := fela.SyntheticDataset(7, 256, 16, 4)
	cfg := fela.RTConfig{
		Workers:    4,
		TotalBatch: 64,
		TokenBatch: 8,
		Iterations: 25,
		LR:         0.05,
		// Worker 3 straggles 5 ms at the start of every iteration; the
		// other workers absorb its tokens reactively.
		Delay: func(iter, wid int) time.Duration {
			if wid == 3 {
				return 5 * time.Millisecond
			}
			return 0
		},
	}

	dist, err := fela.RTTrain(mk, ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	seq, err := fela.RTSequential(mk(), ds, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("distributed token-scheduled training (4 workers, worker 3 straggling):")
	for i := 0; i < len(dist.Losses); i += 5 {
		fmt.Printf("  iteration %2d: loss %.6f\n", i, dist.Losses[i])
	}
	fmt.Printf("  tokens per worker: %v (steals: %d)\n", dist.TokensByWorker, dist.Steals)

	if fela.ParamsEqual(dist, seq) {
		fmt.Println("\nverified: distributed parameters are BIT-IDENTICAL to sequential SGD.")
		fmt.Println("Fela reshuffles who computes what, never what is computed (Table II).")
	} else {
		log.Fatal("distributed training diverged from the sequential reference")
	}
}
