// Configuration tuning: run the two-phase search of §IV-B on VGG19 and
// print every measured case (the data behind Figure 6), the chosen
// configuration, and the best-worst gaps.
package main

import (
	"fmt"
	"log"

	"fela"
)

func main() {
	m := fela.VGG19()
	for _, batch := range []int{64, 1024} {
		fmt.Printf("tuning %s at total batch %d (5 warm-up iterations per case)\n", m.Name, batch)
		r, err := fela.Tune(m, batch)
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range r.Cases {
			tag := ""
			if c.Phase == 3 {
				tag = " (refinement)"
			}
			fmt.Printf("  case %2d phase %d: weights %v subset %d -> %.3f s/iter%s\n",
				c.Index, c.Phase, c.Weights, c.SubsetSize, c.IterTime, tag)
		}
		fmt.Printf("  chosen: weights %v, conditional subset %d\n", r.BestWeights, r.BestSubset)
		fmt.Printf("  gaps: phase 1 %.1f%%, phase 2 %.1f%%, overall %.1f%% (paper: 8.5-51.7%%, 5.3-41.3%%, 8.5-66.8%%)\n",
			100*r.Phase1Gap, 100*r.Phase2Gap, 100*r.OverallGap)
		fmt.Printf("  warm-up cost: %d iterations — trivial against full training runs (§IV-B)\n\n",
			r.WarmupIterations)
	}
}
