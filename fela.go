// Package fela is the public API of this repository: a faithful
// reimplementation of Fela (Geng, Li, Wang — "Fela: Incorporating
// Flexible Parallelism and Elastic Tuning to Accelerate Large-Scale
// DML", ICDE 2020), together with the substrates its evaluation needs.
//
// The package exposes three layers:
//
//   - The cluster simulator: model zoo, GPU profile repository, offline
//     bin partitioning, the Token Server with the ADS/HF/CTD scheduling
//     policies, the two-phase configuration tuner, the DP/MP/HP
//     baselines, and straggler scenarios. Simulate and Compare run the
//     paper's experiments; the internal/experiments drivers regenerate
//     every table and figure (see cmd/felabench).
//
//   - Real-time training: a token-scheduled BSP trainer with real
//     gradient computation over goroutines or TCP, proving the paper's
//     reproducibility claim bit-for-bit (RTTrain, RTSequential).
//
//   - The underlying pieces re-exported as aliases for downstream use.
//
// See README.md for a quickstart and DESIGN.md for the architecture.
package fela

import (
	"fmt"

	"fela/internal/baseline"
	"fela/internal/cluster"
	"fela/internal/felaengine"
	"fela/internal/gpu"
	"fela/internal/metrics"
	"fela/internal/minidnn"
	"fela/internal/model"
	"fela/internal/obs"
	"fela/internal/partition"
	"fela/internal/rt"
	"fela/internal/scheduler"
	"fela/internal/straggler"
	"fela/internal/trace"
	"fela/internal/tuning"
)

// Re-exported core types. Aliases keep the internal packages private
// while letting callers name every type the API returns.
type (
	// Model is a neural-network architecture description.
	Model = model.Model
	// Layer is one model layer.
	Layer = model.Layer
	// SubModel is a contiguous partition slice, the unit tokens train.
	SubModel = model.SubModel
	// RunResult is a measured training run (Eq. 3 throughput etc.).
	RunResult = metrics.RunResult
	// Policy selects the ADS/HF/CTD scheduling policies.
	Policy = scheduler.Policy
	// Scenario injects straggler delays.
	Scenario = straggler.Scenario
	// TuningResult is the outcome of the two-phase configuration tuner.
	TuningResult = tuning.Result
	// Cluster is the simulated testbed.
	Cluster = cluster.Cluster
	// ClusterConfig describes a testbed to simulate.
	ClusterConfig = cluster.Config
	// Network is a real trainable network for the real-time engine.
	Network = minidnn.Network
	// Dataset is a labelled dataset for the real-time engine.
	Dataset = minidnn.Dataset
	// RTConfig configures real-time token-scheduled training.
	RTConfig = rt.Config
	// RTResult is a real-time training outcome.
	RTResult = rt.Result
	// Trace records simulation events for timeline rendering.
	Trace = trace.Trace
	// Registry is the live-telemetry metric registry (internal/obs).
	Registry = obs.Registry
	// Tracer records distributed spans (internal/obs).
	Tracer = obs.Tracer
)

// VGG19 returns the paper's primary benchmark model.
func VGG19() *Model { return model.VGG19() }

// GoogLeNet returns the paper's second benchmark model.
func GoogLeNet() *Model { return model.GoogLeNet() }

// ModelByName resolves a zoo model ("VGG19", "GoogLeNet", "AlexNet",
// "LeNet-5").
func ModelByName(name string) (*Model, error) { return model.ByName(name) }

// Testbed8 returns the paper's evaluation cluster configuration: 8
// nodes, one Tesla K40c each, 10 Gbps Ethernet.
func Testbed8() ClusterConfig { return cluster.Testbed8() }

// NewCluster builds a fresh simulated cluster.
func NewCluster(cfg ClusterConfig) *Cluster { return cluster.New(cfg) }

// Partition applies the offline bin-partitioned method (§IV-A) with the
// paper's bin size, using the default profile repository for the
// testbed GPU.
func Partition(m *Model) []SubModel {
	return partition.Partition(m, gpu.DefaultDB(gpu.TeslaK40c()), partition.DefaultBinSize)
}

// FullPolicy returns all scheduling policies enabled with the given CTD
// subset size (workers 0..subset-1); subset >= 8 disables CTD.
func FullPolicy(subset, workers int) Policy {
	if subset >= workers {
		return Policy{ADS: true, HF: true}
	}
	ids := make([]int, subset)
	for i := range ids {
		ids[i] = i
	}
	return scheduler.FullFela(ids)
}

// NoStraggler is the non-straggler scenario.
func NoStraggler() Scenario { return straggler.None{} }

// RoundRobinStraggler slows worker (iter mod n) by d seconds each
// iteration (Fig. 9 methodology).
func RoundRobinStraggler(d float64, n int) Scenario { return straggler.RoundRobin{D: d, N: n} }

// ProbabilityStraggler makes every worker a straggler with probability p
// per iteration, slowed by d seconds (Fig. 10 methodology).
func ProbabilityStraggler(p, d float64) Scenario {
	return straggler.Probability{P: p, D: d, Seed: 2020}
}

// SimConfig describes one simulated Fela training run.
type SimConfig struct {
	// Model is the benchmark to train.
	Model *Model
	// TotalBatch is the global batch per iteration.
	TotalBatch int
	// Iterations is the number of BSP iterations (the paper uses 100).
	Iterations int
	// Weights is the per-sub-model parallelism vector; nil runs the
	// two-phase tuner first (§IV-B) and uses its choice.
	Weights []int
	// SubsetSize is the CTD conditional subset size; 0 defers to the
	// tuner (or disables CTD when Weights are given explicitly).
	SubsetSize int
	// Scenario injects stragglers; nil means none.
	Scenario Scenario
	// Staleness > 0 enables the SSP extension (§VI): up to that many
	// earlier iterations may still be synchronizing when the next
	// iteration's tokens start. 0 is strict BSP.
	Staleness int
	// Metrics, when non-nil, receives the Token Server's live telemetry
	// (scheduling-path counters, bucket depth gauges — internal/obs).
	Metrics *Registry
}

// Simulate runs Fela on a fresh 8-node testbed and returns the measured
// result. With nil Weights it first runs the configuration tuner.
func Simulate(cfg SimConfig) (RunResult, error) {
	if cfg.Model == nil {
		return RunResult{}, fmt.Errorf("fela: nil model")
	}
	subs := Partition(cfg.Model)
	ccfg := Testbed8()
	weights := cfg.Weights
	subset := cfg.SubsetSize
	if weights == nil {
		tr, err := Tune(cfg.Model, cfg.TotalBatch)
		if err != nil {
			return RunResult{}, err
		}
		weights = tr.BestWeights
		if subset == 0 {
			subset = tr.BestSubset
		}
	}
	if subset == 0 {
		subset = ccfg.N
	}
	return felaengine.Run(cluster.New(ccfg), felaengine.Config{
		Model:      cfg.Model,
		Subs:       subs,
		Weights:    weights,
		TotalBatch: cfg.TotalBatch,
		Iterations: cfg.Iterations,
		Policy:     FullPolicy(subset, ccfg.N),
		Scenario:   cfg.Scenario,
		Staleness:  cfg.Staleness,
		Metrics:    cfg.Metrics,
	})
}

// SimulateTraced runs like Simulate but also records a schedule trace
// (compute, fetch, sync and sleep events) for timeline rendering.
func SimulateTraced(cfg SimConfig) (RunResult, *Trace, error) {
	if cfg.Model == nil {
		return RunResult{}, nil, fmt.Errorf("fela: nil model")
	}
	tr := &trace.Trace{}
	ccfg := Testbed8()
	weights := cfg.Weights
	subset := cfg.SubsetSize
	if weights == nil {
		t, err := Tune(cfg.Model, cfg.TotalBatch)
		if err != nil {
			return RunResult{}, nil, err
		}
		weights = t.BestWeights
		if subset == 0 {
			subset = t.BestSubset
		}
	}
	if subset == 0 {
		subset = ccfg.N
	}
	res, err := felaengine.Run(cluster.New(ccfg), felaengine.Config{
		Model:      cfg.Model,
		Subs:       Partition(cfg.Model),
		Weights:    weights,
		TotalBatch: cfg.TotalBatch,
		Iterations: cfg.Iterations,
		Policy:     FullPolicy(subset, ccfg.N),
		Scenario:   cfg.Scenario,
		Staleness:  cfg.Staleness,
		Trace:      tr,
		Metrics:    cfg.Metrics,
	})
	return res, tr, err
}

// Tune runs the two-phase runtime configuration tuning (§IV-B) for the
// workload on the 8-node testbed.
func Tune(m *Model, totalBatch int) (*TuningResult, error) {
	return tuning.Tune(m, Partition(m), totalBatch, tuning.DefaultOptions())
}

// Comparison holds the four systems' results for one workload.
type Comparison struct {
	Fela, DP, MP, HP RunResult
}

// Compare runs Fela (tuned) and the three baselines on identical fresh
// testbeds — one Figure 8/9/10 data point.
func Compare(m *Model, totalBatch, iterations int, scen Scenario) (Comparison, error) {
	var out Comparison
	fe, err := Simulate(SimConfig{Model: m, TotalBatch: totalBatch, Iterations: iterations, Scenario: scen})
	if err != nil {
		return out, err
	}
	out.Fela = fe
	bcfg := baseline.Config{Model: m, TotalBatch: totalBatch, Iterations: iterations, Scenario: scen}
	if out.DP, err = baseline.RunDP(cluster.New(Testbed8()), bcfg); err != nil {
		return out, err
	}
	if out.MP, err = baseline.RunMP(cluster.New(Testbed8()), bcfg); err != nil {
		return out, err
	}
	if out.HP, err = baseline.RunHP(cluster.New(Testbed8()), bcfg); err != nil {
		return out, err
	}
	return out, nil
}

// PID computes the per-iteration delay (Eq. 4) of a straggler run
// against its non-straggler baseline.
func PID(stragglerRun, base RunResult) float64 { return metrics.PID(stragglerRun, base) }

// NewMLP builds a real multi-layer perceptron for the real-time engine
// (widths: input, hidden..., classes).
func NewMLP(seed int64, widths ...int) *Network { return minidnn.NewMLP(seed, widths...) }

// SyntheticDataset generates a deterministic blob-classification dataset
// for the real-time engine.
func SyntheticDataset(seed int64, n, dim, classes int) *Dataset {
	return minidnn.SyntheticBlobs(seed, n, dim, classes)
}

// RTTrain runs real token-scheduled BSP training in-process: a
// coordinator plus cfg.Workers goroutine workers.
func RTTrain(seedNet func() *Network, ds *Dataset, cfg RTConfig) (*RTResult, error) {
	return rt.Train(seedNet, ds, cfg)
}

// RTSequential runs the sequential reference computation; RTTrain
// produces bit-identical parameters.
func RTSequential(net *Network, ds *Dataset, cfg RTConfig) (*RTResult, error) {
	return rt.Sequential(net, ds, cfg)
}

// ParamsEqual reports bitwise equality of two real parameter sets.
func ParamsEqual(a, b *RTResult) bool { return minidnn.ParamsEqual(a.Params, b.Params) }
