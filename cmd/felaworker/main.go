// Command felaworker joins a felaserver session as one real-time worker:
// it connects, registers its worker id, then pulls tokens and trains
// them on its replica of the model and dataset (both reconstructed from
// the shared deterministic seeds).
//
//	felaworker -addr 127.0.0.1:7070 -wid 0 -workers 4 -iters 20
//
// The -workers/-iters flags must match the server's so that the derived
// session configuration is identical on both sides.
//
// The worker connects with retry-and-backoff (-retries), so it can be
// started before the server. If the coordinator disappears mid-session
// the worker reports the loss and exits cleanly rather than crashing:
// a fault-tolerant coordinator deliberately closes the connections of
// workers it has declared dead, and that is not a worker-side error.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fela/internal/minidnn"
	"fela/internal/rt"
	"fela/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "coordinator address")
	wid := flag.Int("wid", 0, "this worker's id (0-based, unique per worker)")
	workers := flag.Int("workers", 4, "total workers in the session (must match server)")
	iters := flag.Int("iters", 20, "iterations (must match server)")
	sleepMS := flag.Int("straggle", 0, "artificial per-iteration sleep in ms (demo stragglers)")
	retries := flag.Int("retries", 10, "connection attempts before giving up")
	flag.Parse()

	if err := run(*addr, *wid, *workers, *iters, *sleepMS, *retries); err != nil {
		fmt.Fprintln(os.Stderr, "felaworker:", err)
		os.Exit(1)
	}
}

func run(addr string, wid, workers, iters, sleepMS, retries int) error {
	cfg := rt.Config{
		Workers:    workers,
		TotalBatch: 64,
		TokenBatch: 8,
		Iterations: iters,
		LR:         0.05,
	}
	if sleepMS > 0 {
		cfg.Delay = func(int, int) time.Duration { return time.Duration(sleepMS) * time.Millisecond }
	}
	net := minidnn.NewMLP(42, 16, 32, 4)
	ds := minidnn.SyntheticBlobs(7, 256, 16, 4)

	conn, err := transport.DialRetry(addr, retries, 100*time.Millisecond)
	if err != nil {
		return err
	}
	defer conn.Close()
	fmt.Printf("felaworker %d: connected to %s\n", wid, addr)
	if err := rt.NewWorker(wid, net, ds, cfg).Run(conn); err != nil {
		switch transport.Classify(err) {
		case transport.ClassPeerGone, transport.ClassClosed:
			// The coordinator is gone — either it shut down, or it
			// declared this worker dead and closed the connection.
			fmt.Printf("felaworker %d: coordinator lost (%v), exiting\n", wid, err)
			return nil
		}
		return err
	}
	fmt.Printf("felaworker %d: session complete\n", wid)
	return nil
}
