// Command felaworker joins a felaserver session as one real-time worker:
// it connects, registers its worker id, then pulls tokens and trains
// them on its replica of the model and dataset (both reconstructed from
// the shared deterministic seeds).
//
//	felaworker -addr 127.0.0.1:7070 -wid 0 -workers 4 -iters 20
//
// The -workers/-iters flags must match the server's so that the derived
// session configuration is identical on both sides.
//
// The worker connects with retry-and-backoff (-retries), so it can be
// started before the server. If the coordinator disappears mid-session
// the worker reports the loss and exits cleanly rather than crashing:
// a fault-tolerant coordinator deliberately closes the connections of
// workers it has declared dead, and that is not a worker-side error.
//
// Against a `felaserver -elastic` session two more modes exist:
//
//	felaworker -addr ... -join            dial into an in-progress session;
//	                                      the coordinator assigns the worker
//	                                      id at the next iteration barrier
//	felaworker -addr ... -wid 1 -drain-after 10
//	                                      announce a graceful leave at
//	                                      iteration 10 and depart at that
//	                                      barrier
//
// Against a `felaserver -jobs` pool the worker runs in pool mode:
//
//	felaworker -addr ... -pool            register with the job manager,
//	                                      serve whatever jobs it assigns
//	                                      (reconnecting between jobs and
//	                                      across migrations) until the
//	                                      pool shuts down
//
// With -reconnect a fixed-wid worker outlives its coordinator: when the
// server dies mid-session the worker re-dials (with the -retries
// backoff) and re-registers with a fresh model replica instead of
// exiting, which is how workers rejoin a `felaserver -durable-dir`
// restart-and-resume.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fela/internal/jobs"
	"fela/internal/minidnn"
	"fela/internal/obs"
	"fela/internal/rt"
	"fela/internal/tensor"
	"fela/internal/transport"
)

// healthFromStatus maps the worker's status snapshot to a liveness
// verdict: healthy until the worker announces a drain, 503 after (a
// draining worker should fall out of load-balancer rotation). A nil
// snapshot — before registration completes — still reads healthy: the
// process is up, it just has no session yet.
func healthFromStatus(st *rt.WorkerStatus) error {
	if st != nil && st.Draining {
		return fmt.Errorf("worker %d is draining", st.WID)
	}
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "coordinator address")
	wid := flag.Int("wid", 0, "this worker's id (0-based, unique per worker; ignored with -join)")
	workers := flag.Int("workers", 4, "total workers in the session (must match server)")
	iters := flag.Int("iters", 20, "iterations (must match server)")
	sleepMS := flag.Int("straggle", 0, "artificial per-iteration sleep in ms (demo stragglers)")
	retries := flag.Int("retries", 10, "connection attempts before giving up")
	join := flag.Bool("join", false, "join an in-progress elastic session instead of registering a fixed wid")
	drainAfter := flag.Int("drain-after", -1, "announce a graceful leave at this iteration (elastic sessions; -1 = never)")
	reconnect := flag.Bool("reconnect", false,
		"survive coordinator restarts: when the server dies mid-session, re-dial and re-register instead of exiting (pairs with felaserver -durable-dir)")
	pool := flag.Bool("pool", false, "register with a felaserver -jobs pool and serve assigned jobs until shutdown")
	statusAddr := flag.String("status-addr", "",
		"serve worker-side telemetry (/metrics, /statusz, /trace, /debug/pprof) on this address (empty = off)")
	codec := flag.String("codec", transport.DefaultCodec,
		"wire codec (binary or gob); must match the felaserver's -codec")
	compressName := flag.String("compress", "",
		"gradient compression to request for reports (exact, fp16, int8, topk; empty = exact). Engages only when the felaserver permits the same codec and the wire codec is binary; lossy codecs trade the bit-identical guarantee for smaller reports")
	kernelPar := flag.Int("kernel-par", 0,
		"compute-kernel fan-out: goroutines per matmul/conv (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	// SIGQUIT dumps the flight-recorder ring as JSONL to stderr and
	// keeps running — the field-debugging hook every binary carries.
	obs.FlightDumpOnSIGQUIT("felaworker")

	tensor.SetParallelism(*kernelPar)

	var err error
	compress, cerr := transport.ParseCompression(*compressName)
	if cerr != nil {
		err = cerr
	} else if !transport.ValidCodec(*codec) {
		err = fmt.Errorf("unknown codec %q (want %s or %s)", *codec, transport.CodecBinary, transport.CodecGob)
	} else if *pool {
		err = runPool(*addr, *codec, *sleepMS, *retries, *statusAddr)
	} else {
		err = run(*addr, *codec, *wid, *workers, *iters, *sleepMS, *retries, *join, *drainAfter, *reconnect, *statusAddr, compress)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "felaworker:", err)
		os.Exit(1)
	}
}

// runPool registers with a felaserver -jobs pool and serves assigned
// jobs until the pool shuts down, reconnecting between jobs and after
// migrations. The session parameters come from each assignment's
// JobSpec, so no -workers/-iters agreement is needed.
func runPool(addr, codec string, sleepMS, retries int, statusAddr string) error {
	opts := jobs.PoolWorkerOptions{
		Log: func(format string, args ...any) {
			fmt.Printf("felaworker: "+format+"\n", args...)
		},
	}
	if sleepMS > 0 {
		opts.Delay = func(int, int) time.Duration { return time.Duration(sleepMS) * time.Millisecond }
	}
	if statusAddr != "" {
		opts.Metrics = obs.NewRegistry()
		opts.Spans = obs.NewTracer("felaworker")
		// Pool workers serve many short sessions, so there is no single
		// /statusz document; /metrics and /trace aggregate across jobs.
		bound, stop, err := obs.Serve(statusAddr, obs.NewHandler(obs.HandlerOptions{
			Registry: opts.Metrics,
			Tracers:  []*obs.Tracer{opts.Spans},
		}))
		if err != nil {
			return err
		}
		defer stop()
		fmt.Printf("felaworker: telemetry on http://%s\n", bound)
	}
	dial := func() (transport.Conn, error) {
		return transport.DialRetryCodec(addr, retries, 100*time.Millisecond, codec)
	}
	served, err := jobs.RunPoolWorker(dial, opts)
	if err != nil {
		return err
	}
	fmt.Printf("felaworker: pool shut down after %d job assignments\n", served)
	return nil
}

func run(addr, codec string, wid, workers, iters, sleepMS, retries int, join bool, drainAfter int, reconnect bool, statusAddr string, compress transport.Compression) error {
	cfg := rt.Config{
		Workers:    workers,
		TotalBatch: 64,
		TokenBatch: 8,
		Iterations: iters,
		LR:         0.05,
		Compress:   compress,
	}
	if statusAddr != "" {
		cfg.Metrics = obs.NewRegistry()
		cfg.Spans = obs.NewTracer("felaworker")
	}
	if sleepMS > 0 {
		cfg.Delay = func(int, int) time.Duration { return time.Duration(sleepMS) * time.Millisecond }
	}
	if drainAfter >= 0 {
		cfg.Drain = func(iter, _ int) bool { return iter >= drainAfter }
	}
	net := minidnn.NewMLP(42, 16, 32, 4)
	ds := minidnn.SyntheticBlobs(7, 256, 16, 4)

	conn, err := transport.DialRetryCodec(addr, retries, 100*time.Millisecond, codec)
	if err != nil {
		return err
	}
	defer conn.Close()
	fmt.Printf("felaworker: connected to %s\n", addr)

	if join {
		if reconnect {
			return fmt.Errorf("-reconnect applies to fixed-wid workers (a joiner's id dies with its session)")
		}
		// A joiner's worker id is assigned mid-protocol, so its /statusz
		// stays 503; /metrics, /trace and pprof work from the start.
		if statusAddr != "" {
			bound, stop, err := obs.Serve(statusAddr, obs.NewHandler(obs.HandlerOptions{
				Registry: cfg.Metrics,
				Tracers:  []*obs.Tracer{cfg.Spans},
			}))
			if err != nil {
				return err
			}
			defer stop()
			fmt.Printf("felaworker: telemetry on http://%s\n", bound)
		}
		assigned, err := rt.Join(conn, net, ds, cfg)
		if err != nil {
			return workerExit(-1, err)
		}
		if assigned < 0 {
			fmt.Println("felaworker: session ended before this joiner was admitted")
			return nil
		}
		fmt.Printf("felaworker: admitted as worker %d; session complete\n", assigned)
		return nil
	}

	w := rt.NewWorker(wid, net, ds, cfg)
	if statusAddr != "" {
		bound, stop, err := obs.Serve(statusAddr, obs.NewHandler(obs.HandlerOptions{
			Registry: cfg.Metrics,
			Status:   w.StatusAny,
			Health:   func() error { return healthFromStatus(w.Status()) },
			Tracers:  []*obs.Tracer{cfg.Spans},
		}))
		if err != nil {
			return err
		}
		defer stop()
		fmt.Printf("felaworker %d: telemetry on http://%s (/metrics /statusz /trace /debug/pprof)\n", wid, bound)
	}
	for {
		err := w.Run(conn)
		if err == nil {
			fmt.Printf("felaworker %d: session complete\n", wid)
			return nil
		}
		switch transport.Classify(err) {
		case transport.ClassPeerGone, transport.ClassClosed:
			if !reconnect {
				return workerExit(wid, err)
			}
		default:
			return err
		}
		// The coordinator died (or evicted us). A durable server replays
		// its ledger and resumes the session from the last checkpoint, so
		// re-register with a fresh replica — the first iter-start after
		// registration delivers the resumed model snapshot.
		conn.Close()
		fmt.Printf("felaworker %d: coordinator lost (%v), reconnecting\n", wid, err)
		conn, err = transport.DialRetryCodec(addr, retries, 100*time.Millisecond, codec)
		if err != nil {
			return err
		}
		fmt.Printf("felaworker %d: reconnected to %s\n", wid, addr)
		net = minidnn.NewMLP(42, 16, 32, 4)
		w = rt.NewWorker(wid, net, ds, cfg)
	}
}

// workerExit folds coordinator-side disconnects into a clean exit: a
// fault-tolerant coordinator deliberately closes the connections of
// workers it has declared dead.
func workerExit(wid int, err error) error {
	switch transport.Classify(err) {
	case transport.ClassPeerGone, transport.ClassClosed:
		fmt.Printf("felaworker %d: coordinator lost (%v), exiting\n", wid, err)
		return nil
	}
	return err
}
