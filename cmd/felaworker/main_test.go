package main

import (
	"testing"
	"time"

	"fela/internal/minidnn"
	"fela/internal/rt"
	"fela/internal/transport"
)

// healthFromStatus backs the /healthz endpoint of a fixed-wid worker:
// healthy while training, 503 once the worker announces a graceful
// leave, and healthy when no status has been published yet (startup).
func TestHealthFromStatus(t *testing.T) {
	if err := healthFromStatus(nil); err != nil {
		t.Errorf("nil status: got %v, want healthy", err)
	}
	if err := healthFromStatus(&rt.WorkerStatus{WID: 3}); err != nil {
		t.Errorf("running worker: got %v, want healthy", err)
	}
	err := healthFromStatus(&rt.WorkerStatus{WID: 3, Draining: true})
	if err == nil {
		t.Fatal("draining worker: got nil, want error (503)")
	}
}

// TestReconnectSurvivesCoordinatorRestart: with -reconnect, a fixed-wid
// worker outlives its coordinator. The first incarnation accepts the
// registration and dies (connection closed, as a crashed felaserver
// would); the worker must re-dial, re-register with a fresh replica,
// and complete the session the second incarnation serves.
func TestReconnectSurvivesCoordinatorRestart(t *testing.T) {
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	addr := l.Addr()

	workerDone := make(chan error, 1)
	go func() {
		workerDone <- run(addr, transport.DefaultCodec, 0, 1, 3, 0, 50, false, -1, true, "", transport.CompressExact)
	}()

	// Incarnation one: take the registration, then die.
	c1, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if m, err := c1.Recv(); err != nil || m.Kind != transport.KindRegister {
		t.Fatalf("first contact: msg %v err %v, want register", m, err)
	}
	c1.Close()

	// Incarnation two: serve a real session to completion. The worker's
	// replica must arrive fresh — the coordinator verifies the result
	// bitwise against the sequential reference.
	c2, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	cfg := rt.Config{Workers: 1, TotalBatch: 64, TokenBatch: 8, Iterations: 3, LR: 0.05}
	mk := func() *minidnn.Network { return minidnn.NewMLP(42, 16, 32, 4) }
	ds := minidnn.SyntheticBlobs(7, 256, 16, 4)
	co, err := rt.NewCoordinator(mk(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Run([]transport.Conn{c2})
	if err != nil {
		t.Fatalf("second incarnation: %v", err)
	}
	ref, err := rt.Sequential(mk(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !minidnn.ParamsEqual(ref.Params, res.Params) {
		t.Fatal("reconnected worker diverged from sequential reference")
	}
	select {
	case err := <-workerDone:
		if err != nil {
			t.Fatalf("worker exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit after the session completed")
	}
}
