package main

import (
	"testing"

	"fela/internal/rt"
)

// healthFromStatus backs the /healthz endpoint of a fixed-wid worker:
// healthy while training, 503 once the worker announces a graceful
// leave, and healthy when no status has been published yet (startup).
func TestHealthFromStatus(t *testing.T) {
	if err := healthFromStatus(nil); err != nil {
		t.Errorf("nil status: got %v, want healthy", err)
	}
	if err := healthFromStatus(&rt.WorkerStatus{WID: 3}); err != nil {
		t.Errorf("running worker: got %v, want healthy", err)
	}
	err := healthFromStatus(&rt.WorkerStatus{WID: 3, Draining: true})
	if err == nil {
		t.Fatal("draining worker: got nil, want error (503)")
	}
}
