package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"fmt"

	"fela/internal/durable"
	"fela/internal/jobs"
	"fela/internal/minidnn"
	"fela/internal/obs"
	"fela/internal/rt"
	"fela/internal/transport"
	"fela/internal/workload"
)

// freeAddr reserves an ephemeral TCP port and returns it.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startWorker launches a registered worker over TCP with the session
// config felaworker would derive.
func startWorker(t *testing.T, addr string, wid, workers, iters int, cfg rt.Config, wg *sync.WaitGroup) {
	t.Helper()
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := transport.DialRetry(addr, 50, 20*time.Millisecond)
		if err != nil {
			t.Errorf("worker %d dial: %v", wid, err)
			return
		}
		defer conn.Close()
		net := minidnn.NewMLP(42, 16, 32, 4)
		ds := minidnn.SyntheticBlobs(7, 256, 16, 4)
		if err := rt.NewWorker(wid, net, ds, cfg).Run(conn); err != nil {
			switch transport.Classify(err) {
			case transport.ClassPeerGone, transport.ClassClosed:
			default:
				t.Errorf("worker %d: %v", wid, err)
			}
		}
	}()
}

// TestServerStrictSession: the pre-elastic path still works end to end
// over TCP.
func TestServerStrictSession(t *testing.T) {
	addr := freeAddr(t)
	const workers, iters = 2, 4
	cfg, _, _ := sessionConfig(workers, iters, 0)

	var wg sync.WaitGroup
	for wid := 0; wid < workers; wid++ {
		startWorker(t, addr, wid, workers, iters, cfg, &wg)
	}
	if err := run(addr, transport.DefaultCodec, workers, iters, 0, elasticOpts{}, obsOpts{}, durableOpts{}, nil, 0, transport.CompressExact); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestServerElasticSession drives the full CLI path over real TCP: two
// registered workers, one late joiner (the felaworker -join path), and a
// mid-session drain (-drain-after). The run must verify bit-identity
// against the sequential reference, which the server checks itself.
func TestServerElasticSession(t *testing.T) {
	addr := freeAddr(t)
	const workers, iters = 2, 12
	cfg, _, _ := sessionConfig(workers, iters, 2*time.Second)
	// Throttle registered workers so the session lasts long enough for
	// the joiner to dial in, and so the joiner reliably gets to train
	// once admitted.
	slow := cfg
	slow.Delay = func(int, int) time.Duration { return 15 * time.Millisecond }

	var wg sync.WaitGroup
	for wid := 0; wid < workers; wid++ {
		startWorker(t, addr, wid, workers, iters, slow, &wg)
	}

	// The joiner dials in once the session is already running and drains
	// out again near the end — exercising join, re-tune, and drain in
	// one process lifetime (felaworker -join -drain-after 10).
	joined := make(chan int, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(50 * time.Millisecond)
		conn, err := transport.DialRetry(addr, 5, 10*time.Millisecond)
		if err != nil {
			t.Errorf("joiner dial: %v", err)
			joined <- -1
			return
		}
		defer conn.Close()
		jcfg := cfg
		jcfg.Drain = func(iter, _ int) bool { return iter >= 10 }
		net := minidnn.NewMLP(42, 16, 32, 4)
		ds := minidnn.SyntheticBlobs(7, 256, 16, 4)
		assigned, err := rt.Join(conn, net, ds, jcfg)
		if err != nil {
			switch transport.Classify(err) {
			case transport.ClassPeerGone, transport.ClassClosed:
			default:
				t.Errorf("joiner: %v", err)
			}
		}
		joined <- assigned
	}()

	if err := run(addr, transport.DefaultCodec, workers, iters, 2*time.Second, elasticOpts{enabled: true, minWorkers: 1}, obsOpts{}, durableOpts{}, nil, 0, transport.CompressExact); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if assigned := <-joined; assigned != 2 {
		t.Errorf("joiner assigned wid %d, want 2", assigned)
	}
}

// TestServerElasticValidation: nonsensical elastic bounds fail fast.
func TestServerElasticValidation(t *testing.T) {
	err := run(freeAddr(t), transport.DefaultCodec, 2, 4, time.Second, elasticOpts{enabled: true, minWorkers: 5, maxWorkers: 2}, obsOpts{}, durableOpts{}, nil, 0, transport.CompressExact)
	if err == nil {
		t.Fatal("min-workers > max-workers accepted")
	}
	if want := "min workers"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
}

// TestServerObservabilityE2E is the acceptance run for the telemetry
// layer: a real TCP elastic session with telemetry enabled and an
// injected straggler, scraped over HTTP while training is in flight.
// It asserts that /metrics parses and carries non-zero token-latency
// buckets plus per-kind transport byte counters, that /statusz tracks
// the live worker count across a join, and that the server's Chrome
// trace export shares trace ids with the workers' — one distributed
// trace per token round-trip.
func TestServerObservabilityE2E(t *testing.T) {
	addr := freeAddr(t)
	statusAddr := freeAddr(t)
	traceJSON := filepath.Join(t.TempDir(), "trace.json")
	const workers, iters = 2, 12
	cfg, _, _ := sessionConfig(workers, iters, 2*time.Second)

	// Workers share one registry and tracer, standing in for felaworker
	// -status-addr processes. Worker 0 is the injected straggler; the
	// delays also stretch the session so the joiner and the HTTP polls
	// land mid-training.
	wcfg := cfg
	wcfg.Metrics = obs.NewRegistry()
	wcfg.Spans = obs.NewTracer("felaworker")
	wcfg.Delay = func(_, wid int) time.Duration {
		if wid == 0 {
			return 25 * time.Millisecond
		}
		return 10 * time.Millisecond
	}

	var wg sync.WaitGroup
	for wid := 0; wid < workers; wid++ {
		startWorker(t, addr, wid, workers, iters, wcfg, &wg)
	}

	// A joiner dials in mid-session (felaworker -join) so /statusz has a
	// membership change to report.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(50 * time.Millisecond)
		conn, err := transport.DialRetry(addr, 5, 10*time.Millisecond)
		if err != nil {
			t.Errorf("joiner dial: %v", err)
			return
		}
		defer conn.Close()
		jcfg := wcfg
		net := minidnn.NewMLP(42, 16, 32, 4)
		ds := minidnn.SyntheticBlobs(7, 256, 16, 4)
		if _, err := rt.Join(conn, net, ds, jcfg); err != nil {
			switch transport.Classify(err) {
			case transport.ClassPeerGone, transport.ClassClosed:
			default:
				t.Errorf("joiner: %v", err)
			}
		}
	}()

	done := make(chan error, 1)
	go func() {
		done <- run(addr, transport.DefaultCodec, workers, iters, 2*time.Second,
			elasticOpts{enabled: true, minWorkers: 1},
			obsOpts{statusAddr: statusAddr, traceJSON: traceJSON}, durableOpts{}, nil, 0, transport.CompressExact)
	}()

	// Scrape while the session runs. The obs server dies with run(), so
	// the last successful bodies are the session's final live state.
	var lastMetrics, lastFlight string
	healthOK := false
	liveSeen := map[int]bool{}
	client := &http.Client{Timeout: time.Second}
	deadline := time.After(30 * time.Second)
	var runErr error
poll:
	for {
		select {
		case runErr = <-done:
			break poll
		case <-deadline:
			t.Fatal("session did not finish within 30s")
		case <-time.After(5 * time.Millisecond):
		}
		if resp, err := client.Get("http://" + statusAddr + "/statusz"); err == nil {
			var st rt.Status
			err := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err == nil {
				liveSeen[len(st.LiveWorkers)] = true
			}
		}
		if resp, err := client.Get("http://" + statusAddr + "/metrics"); err == nil {
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err == nil && len(body) > 0 {
				lastMetrics = string(body)
			}
		}
		if resp, err := client.Get("http://" + statusAddr + "/healthz"); err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				healthOK = true
			}
		}
		if resp, err := client.Get("http://" + statusAddr + "/debug/flight"); err == nil {
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err == nil && len(body) > 0 {
				lastFlight = string(body)
			}
		}
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	wg.Wait()

	// /statusz tracked membership across the join: 2 registered workers,
	// then 3 after the barrier admitted the joiner.
	if !liveSeen[2] || !liveSeen[3] {
		t.Errorf("statusz live-worker counts seen = %v, want both 2 and 3", liveSeen)
	}

	// /healthz answered 200 while the session ran, and /debug/flight
	// streamed the protocol ring as JSONL.
	if !healthOK {
		t.Error("never saw a 200 from /healthz while the session ran")
	}
	if lastFlight == "" {
		t.Error("never scraped /debug/flight successfully")
	}
	flightEvents := 0
	for _, line := range strings.Split(strings.TrimSpace(lastFlight), "\n") {
		if line == "" {
			continue
		}
		var ev obs.FlightEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("flight dump line %q: %v", line, err)
		}
		flightEvents++
	}
	if flightEvents == 0 {
		t.Error("flight dump held no events after a full session")
	}

	// /metrics parses as OpenMetrics-flavoured text — including exemplar
	// suffixes on histogram buckets — and passes the exposition lint.
	if lastMetrics == "" {
		t.Fatal("never scraped /metrics successfully")
	}
	if errs := obs.LintExposition(strings.NewReader(lastMetrics)); len(errs) > 0 {
		t.Fatalf("exposition lint: %v", errs)
	}
	exp, err := obs.ParseExposition(strings.NewReader(lastMetrics))
	if err != nil {
		t.Fatalf("parse /metrics: %v", err)
	}
	tokenCount := 0.0
	tokenBuckets := 0
	exemplars := 0
	byteKinds := map[string]bool{}
	for _, s := range exp.Samples {
		switch {
		case s.Name == rt.MetricTokenSeconds+"_count":
			tokenCount = s.Value
		case s.Name == rt.MetricTokenSeconds+"_bucket":
			if s.Value > 0 {
				tokenBuckets++
			}
			if s.Exemplar != nil {
				exemplars++
			}
		case s.Name == transport.MetricBytes:
			if s.Value > 0 {
				byteKinds[s.Labels["kind"]] = true
			}
		}
	}
	if tokenCount == 0 {
		t.Errorf("%s_count is zero in the final scrape", rt.MetricTokenSeconds)
	}
	if tokenBuckets == 0 {
		t.Errorf("no non-zero %s buckets", rt.MetricTokenSeconds)
	}
	if exemplars == 0 {
		t.Errorf("no exemplars on %s buckets", rt.MetricTokenSeconds)
	}
	if len(byteKinds) < 2 {
		t.Errorf("per-kind transport byte counters = %v, want at least 2 kinds", byteKinds)
	}

	// The server's trace export and the workers' share trace ids: the
	// iteration/token spans the coordinator opened are the parents of the
	// compute spans the workers recorded.
	serverIDs := traceIDs(t, readFileT(t, traceJSON))
	var wbuf bytes.Buffer
	if err := obs.WriteChromeTrace(&wbuf, wcfg.Spans); err != nil {
		t.Fatal(err)
	}
	workerIDs := traceIDs(t, wbuf.Bytes())
	if len(serverIDs) == 0 || len(workerIDs) == 0 {
		t.Fatalf("empty trace exports: server %d ids, workers %d ids", len(serverIDs), len(workerIDs))
	}
	shared := 0
	for id := range workerIDs {
		if serverIDs[id] {
			shared++
		}
	}
	if shared == 0 {
		t.Error("no trace id appears in both the server and worker exports")
	}
}

// TestServerJobsMode drives the multi-tenant path end to end over real
// TCP: `felaserver -jobs -alloc throughput-max -max-jobs 2` serving
// three `felaworker -pool` processes and two concurrent wire
// submissions on the same port. The server exits on its own after the
// second completion, both submitters get final parameters bit-identical
// to solo training, and every pool worker exits cleanly.
func TestServerJobsMode(t *testing.T) {
	addr := freeAddr(t)

	done := make(chan error, 1)
	go func() {
		done <- runJobs(addr, transport.DefaultCodec,
			jobsOpts{alloc: "throughput-max", maxJobs: 2}, 2*time.Second, obsOpts{}, durableOpts{}, nil, 0)
	}()

	const poolWorkers = 3
	workersDone := make(chan error, poolWorkers)
	dial := func() (transport.Conn, error) {
		return transport.DialRetry(addr, 50, 20*time.Millisecond)
	}
	for i := 0; i < poolWorkers; i++ {
		go func() {
			_, err := jobs.RunPoolWorker(dial, jobs.PoolWorkerOptions{})
			workersDone <- err
		}()
	}

	specs := []transport.JobSpec{
		{Name: "tcp-a", Iterations: 12, TotalBatch: 64, TokenBatch: 8, Seed: 0},
		{Name: "tcp-b", Iterations: 16, TotalBatch: 32, TokenBatch: 8, Seed: 5},
	}
	results := make(chan error, len(specs))
	for _, spec := range specs {
		go func(spec transport.JobSpec) {
			m, err := jobs.SubmitAndWait(addr, spec, 50)
			if err != nil {
				results <- err
				return
			}
			ref, err := jobs.Reference(spec)
			if err != nil {
				results <- err
				return
			}
			flat := make([][]float32, len(ref.Params))
			for i, p := range ref.Params {
				flat[i] = p.Data
			}
			if !flatEqual(flat, m.Params) {
				results <- fmt.Errorf("job %s: wire result diverged from solo training", spec.Name)
				return
			}
			results <- nil
		}(spec)
	}
	for range specs {
		if err := <-results; err != nil {
			t.Error(err)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runJobs: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain after -max-jobs completions")
	}
	for i := 0; i < poolWorkers; i++ {
		if err := <-workersDone; err != nil {
			t.Errorf("pool worker: %v", err)
		}
	}
}

// TestServerClusterTrace drives `felaserver -jobs -cluster-trace` end
// to end: a synthesized 4-job trace on disk is replayed (sped up)
// against two TCP pool workers under OASiS admission, and the server
// prints its cluster summary and drains itself once every submission
// settles.
func TestServerClusterTrace(t *testing.T) {
	tr, err := workload.Synthesize(
		workload.Poisson{Rate: 4}, workload.DefaultMix(time.Millisecond), 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	tr.Name = "e2e"
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}

	addr := freeAddr(t)
	done := make(chan error, 1)
	go func() {
		done <- runJobs(addr, transport.DefaultCodec, jobsOpts{
			alloc: "oasis", admission: "oasis", trace: path, traceScale: 4,
		}, 2*time.Second, obsOpts{}, durableOpts{}, nil, 0)
	}()

	const poolWorkers = 2
	workersDone := make(chan error, poolWorkers)
	dial := func() (transport.Conn, error) {
		return transport.DialRetry(addr, 50, 20*time.Millisecond)
	}
	for i := 0; i < poolWorkers; i++ {
		go func() {
			_, err := jobs.RunPoolWorker(dial, jobs.PoolWorkerOptions{})
			workersDone <- err
		}()
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runJobs: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("server did not drain after the trace replay settled")
	}
	for i := 0; i < poolWorkers; i++ {
		if err := <-workersDone; err != nil {
			t.Errorf("pool worker: %v", err)
		}
	}
}

func flatEqual(a, b [][]float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func readFileT(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// traceIDs extracts the trace_id of every span in a Chrome trace_event
// export, failing the test if the JSON is malformed.
func traceIDs(t *testing.T, data []byte) map[string]bool {
	t.Helper()
	var out struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	ids := map[string]bool{}
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if id, _ := ev.Args["trace_id"].(string); id != "" {
			ids[id] = true
		}
	}
	return ids
}

// TestJobsModeGracefulShutdown sends a SIGTERM to an idle job manager
// (with a live pool worker attached) and requires a clean nil exit.
func TestJobsModeGracefulShutdown(t *testing.T) {
	addr := freeAddr(t)
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- runJobs(addr, transport.DefaultCodec, jobsOpts{alloc: "fair-share"},
			2*time.Second, obsOpts{}, durableOpts{}, sig, 10*time.Second)
	}()

	workerDone := make(chan error, 1)
	go func() {
		dial := func() (transport.Conn, error) {
			return transport.DialRetry(addr, 50, 20*time.Millisecond)
		}
		_, err := jobs.RunPoolWorker(dial, jobs.PoolWorkerOptions{})
		workerDone <- err
	}()

	// Give the worker time to register, then pull the plug.
	time.Sleep(200 * time.Millisecond)
	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runJobs returned %v, want clean exit", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("runJobs did not exit after SIGTERM")
	}
	select {
	case <-workerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("pool worker did not exit after the manager drained")
	}
}

// TestSessionModeSignalBeforeWorkers interrupts a server still waiting
// for its initial workers; it must exit 0 instead of hanging in Accept.
func TestSessionModeSignalBeforeWorkers(t *testing.T) {
	addr := freeAddr(t)
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(addr, transport.DefaultCodec, 4, 4, 0, elasticOpts{}, obsOpts{}, durableOpts{}, sig, time.Second, transport.CompressExact)
	}()
	// Wait until the listener is up so the signal lands mid-wait.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			c.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never started listening")
		}
		time.Sleep(10 * time.Millisecond)
	}
	sig <- syscall.SIGINT
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want clean exit", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after SIGINT")
	}
}

// TestServerDurableSessionResume: a felaserver on -durable-dir survives
// restarts. Phase 1 trains a 4-iteration session to completion, leaving
// a ledger and checkpoints behind. Phase 2 reopens the same directory
// for a longer 8-iteration session: /healthz must serve 503 "restoring"
// until the workers reconnect, then the session resumes from the
// iteration-3 checkpoint and run() itself verifies the result is
// bit-identical to an uninterrupted sequential run. Phase 3 restarts
// once more — the final checkpoint already covers every iteration, so
// the server settles and verifies without waiting for any workers.
func TestServerDurableSessionResume(t *testing.T) {
	dir := t.TempDir()
	open := func() durableOpts {
		t.Helper()
		plane, err := openDurable(dir, false)
		if err != nil {
			t.Fatal(err)
		}
		return durableOpts{plane: plane, every: 2}
	}

	// Phase 1: checkpointDue commits frames at iterations 1 and 3.
	du := open()
	addr := freeAddr(t)
	cfg4, _, _ := sessionConfig(2, 4, 0)
	var wg sync.WaitGroup
	for wid := 0; wid < 2; wid++ {
		startWorker(t, addr, wid, 2, 4, cfg4, &wg)
	}
	if err := run(addr, transport.DefaultCodec, 2, 4, 0, elasticOpts{}, obsOpts{}, du, nil, 0, transport.CompressExact); err != nil {
		t.Fatalf("phase 1: %v", err)
	}
	wg.Wait()
	if err := du.plane.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: same directory, longer session — resume from iteration 3.
	du = open()
	if got := len(du.plane.Entries); got == 0 {
		t.Fatal("phase 2: replayed ledger is empty")
	}
	addr = freeAddr(t)
	statusAddr := freeAddr(t)
	done := make(chan error, 1)
	go func() {
		done <- run(addr, transport.DefaultCodec, 2, 8, 0, elasticOpts{}, obsOpts{statusAddr: statusAddr}, du, nil, 0, transport.CompressExact)
	}()

	// Before any worker reconnects the health gate must hold: 503 with
	// "restoring" in the body. Any other response once the obs server is
	// up is a bug (restoring is set before the listener opens).
	deadline := time.Now().Add(5 * time.Second)
	sawRestoring := false
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + statusAddr + "/healthz")
		if err != nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "restoring") {
			t.Fatalf("healthz before rejoin: status %d body %q, want 503 restoring", resp.StatusCode, body)
		}
		sawRestoring = true
		break
	}
	if !sawRestoring {
		t.Fatal("healthz never answered before the rejoin window closed")
	}

	cfg8, _, _ := sessionConfig(2, 8, 0)
	var wg2 sync.WaitGroup
	for wid := 0; wid < 2; wid++ {
		startWorker(t, addr, wid, 2, 8, cfg8, &wg2)
	}
	// run() returns an error if the resumed result diverges from the
	// sequential reference, so a nil here is the bit-identity proof.
	if err := <-done; err != nil {
		t.Fatalf("phase 2: %v", err)
	}
	wg2.Wait()
	if err := du.plane.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 3: the covering checkpoint settles the session workerless.
	du = open()
	defer du.plane.Close()
	var joins, barriers, lastBarrier int
	for _, e := range du.plane.Entries {
		switch e.Op {
		case durable.OpJoin:
			joins++
		case durable.OpBarrier:
			barriers++
			lastBarrier = e.Iter
		}
	}
	if joins != 4 || barriers < 3 || lastBarrier != 7 {
		t.Fatalf("ledger history: joins=%d barriers=%d last=%d, want 4 joins, >=3 barriers ending at 7",
			joins, barriers, lastBarrier)
	}
	if err := run(freeAddr(t), transport.DefaultCodec, 2, 8, 0, elasticOpts{}, obsOpts{}, du, nil, 0, transport.CompressExact); err != nil {
		t.Fatalf("phase 3: %v", err)
	}
}
