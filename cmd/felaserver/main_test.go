package main

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"fela/internal/minidnn"
	"fela/internal/rt"
	"fela/internal/transport"
)

// freeAddr reserves an ephemeral TCP port and returns it.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startWorker launches a registered worker over TCP with the session
// config felaworker would derive.
func startWorker(t *testing.T, addr string, wid, workers, iters int, cfg rt.Config, wg *sync.WaitGroup) {
	t.Helper()
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := transport.DialRetry(addr, 50, 20*time.Millisecond)
		if err != nil {
			t.Errorf("worker %d dial: %v", wid, err)
			return
		}
		defer conn.Close()
		net := minidnn.NewMLP(42, 16, 32, 4)
		ds := minidnn.SyntheticBlobs(7, 256, 16, 4)
		if err := rt.NewWorker(wid, net, ds, cfg).Run(conn); err != nil {
			switch transport.Classify(err) {
			case transport.ClassPeerGone, transport.ClassClosed:
			default:
				t.Errorf("worker %d: %v", wid, err)
			}
		}
	}()
}

// TestServerStrictSession: the pre-elastic path still works end to end
// over TCP.
func TestServerStrictSession(t *testing.T) {
	addr := freeAddr(t)
	const workers, iters = 2, 4
	cfg, _, _ := sessionConfig(workers, iters, 0)

	var wg sync.WaitGroup
	for wid := 0; wid < workers; wid++ {
		startWorker(t, addr, wid, workers, iters, cfg, &wg)
	}
	if err := run(addr, workers, iters, 0, elasticOpts{}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestServerElasticSession drives the full CLI path over real TCP: two
// registered workers, one late joiner (the felaworker -join path), and a
// mid-session drain (-drain-after). The run must verify bit-identity
// against the sequential reference, which the server checks itself.
func TestServerElasticSession(t *testing.T) {
	addr := freeAddr(t)
	const workers, iters = 2, 12
	cfg, _, _ := sessionConfig(workers, iters, 2*time.Second)
	// Throttle registered workers so the session lasts long enough for
	// the joiner to dial in, and so the joiner reliably gets to train
	// once admitted.
	slow := cfg
	slow.Delay = func(int, int) time.Duration { return 15 * time.Millisecond }

	var wg sync.WaitGroup
	for wid := 0; wid < workers; wid++ {
		startWorker(t, addr, wid, workers, iters, slow, &wg)
	}

	// The joiner dials in once the session is already running and drains
	// out again near the end — exercising join, re-tune, and drain in
	// one process lifetime (felaworker -join -drain-after 10).
	joined := make(chan int, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(50 * time.Millisecond)
		conn, err := transport.DialRetry(addr, 5, 10*time.Millisecond)
		if err != nil {
			t.Errorf("joiner dial: %v", err)
			joined <- -1
			return
		}
		defer conn.Close()
		jcfg := cfg
		jcfg.Drain = func(iter, _ int) bool { return iter >= 10 }
		net := minidnn.NewMLP(42, 16, 32, 4)
		ds := minidnn.SyntheticBlobs(7, 256, 16, 4)
		assigned, err := rt.Join(conn, net, ds, jcfg)
		if err != nil {
			switch transport.Classify(err) {
			case transport.ClassPeerGone, transport.ClassClosed:
			default:
				t.Errorf("joiner: %v", err)
			}
		}
		joined <- assigned
	}()

	if err := run(addr, workers, iters, 2*time.Second, elasticOpts{enabled: true, minWorkers: 1}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if assigned := <-joined; assigned != 2 {
		t.Errorf("joiner assigned wid %d, want 2", assigned)
	}
}

// TestServerElasticValidation: nonsensical elastic bounds fail fast.
func TestServerElasticValidation(t *testing.T) {
	err := run(freeAddr(t), 2, 4, time.Second, elasticOpts{enabled: true, minWorkers: 5, maxWorkers: 2})
	if err == nil {
		t.Fatal("min-workers > max-workers accepted")
	}
	if want := "min workers"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
}
