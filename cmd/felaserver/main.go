// Command felaserver runs the real-time Fela coordinator (Token Server +
// BSP synchronizer) on a TCP address and trains a real MLP on the
// deterministic synthetic dataset together with felaworker processes.
//
// Start the server, then launch -workers felaworker processes pointing
// at the printed address:
//
//	felaserver -addr 127.0.0.1:7070 -workers 4 -iters 20
//	felaworker -addr 127.0.0.1:7070 -wid 0   (… one per worker id)
//
// The server prints per-iteration loss, the token distribution across
// workers, and verifies the result bit-for-bit against the sequential
// reference.
//
// With -worker-timeout set, the session is fault tolerant: workers that
// crash, hang or corrupt the wire are declared dead, their outstanding
// tokens are retrained by the survivors, the run completes on whoever
// is left, and a fault summary is printed at the end. The result stays
// bit-identical to the sequential reference regardless of which workers
// died.
//
// With -elastic, membership is live: the server keeps accepting
// connections for the whole session, so additional `felaworker -join`
// processes become workers at the next iteration barrier, workers may
// drain out gracefully (`felaworker -drain-after N`), and the online
// re-tuner reshapes the token distribution from live per-iteration
// timings after every scale event. -min-workers bounds eviction,
// -max-workers bounds admission. Elastic mode implies fault tolerance
// (a default -worker-timeout is applied if none is set).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fela/internal/elastic"
	"fela/internal/metrics"
	"fela/internal/minidnn"
	"fela/internal/obs"
	"fela/internal/rt"
	"fela/internal/transport"
)

// sessionConfig derives the shared session parameters both server and
// workers must agree on (see cmd/felaworker).
func sessionConfig(workers, iters int, workerTimeout time.Duration) (rt.Config, func() *minidnn.Network, *minidnn.Dataset) {
	cfg := rt.Config{
		Workers:       workers,
		TotalBatch:    64,
		TokenBatch:    8,
		Iterations:    iters,
		LR:            0.05,
		WorkerTimeout: workerTimeout,
	}
	mk := func() *minidnn.Network { return minidnn.NewMLP(42, 16, 32, 4) }
	ds := minidnn.SyntheticBlobs(7, 256, 16, 4)
	return cfg, mk, ds
}

// elasticOpts bundles the live-membership flags.
type elasticOpts struct {
	enabled    bool
	minWorkers int
	maxWorkers int
}

// obsOpts bundles the telemetry flags. Both default to off, keeping the
// uninstrumented fast path.
type obsOpts struct {
	// statusAddr, when set, serves /metrics, /statusz, /trace and
	// /debug/pprof on that address for the whole session.
	statusAddr string
	// traceJSON, when set, writes the session's distributed spans as
	// Chrome trace_event JSON to that file when the session ends.
	traceJSON string
}

func (o obsOpts) enabled() bool { return o.statusAddr != "" || o.traceJSON != "" }

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "address to listen on")
	workers := flag.Int("workers", 4, "number of workers to wait for")
	iters := flag.Int("iters", 20, "iterations to train")
	workerTimeout := flag.Duration("worker-timeout", 0,
		"fault tolerance: declare a worker dead after this long without progress (0 = strict mode, any fault aborts)")
	elasticMode := flag.Bool("elastic", false,
		"live membership: accept felaworker -join connections for the whole session and re-tune on scale events")
	minWorkers := flag.Int("min-workers", 1, "elastic: never evict below this many live workers")
	maxWorkers := flag.Int("max-workers", 0, "elastic: admission cap for joiners (0 = unbounded)")
	statusAddr := flag.String("status-addr", "",
		"serve live telemetry (/metrics, /statusz, /trace, /debug/pprof) on this address (empty = off)")
	traceJSON := flag.String("trace-json", "",
		"write the session's spans as Chrome trace_event JSON to this file on exit (empty = off)")
	flag.Parse()

	opts := elasticOpts{enabled: *elasticMode, minWorkers: *minWorkers, maxWorkers: *maxWorkers}
	oo := obsOpts{statusAddr: *statusAddr, traceJSON: *traceJSON}
	if err := run(*addr, *workers, *iters, *workerTimeout, opts, oo); err != nil {
		fmt.Fprintln(os.Stderr, "felaserver:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, iters int, workerTimeout time.Duration, opts elasticOpts, oo obsOpts) error {
	if opts.enabled && workerTimeout == 0 {
		// Elastic membership rides on the fault-tolerant machinery (a
		// drain is a planned death); give it a generous default deadline.
		workerTimeout = 10 * time.Second
	}
	cfg, mk, ds := sessionConfig(workers, iters, workerTimeout)

	if oo.enabled() {
		cfg.Metrics = obs.NewRegistry()
		cfg.Spans = obs.NewTracer("felaserver")
	}

	var ctrl *elastic.Controller
	if opts.enabled {
		var err error
		ctrl, err = elastic.NewController(elastic.Config{
			MinWorkers: opts.minWorkers,
			MaxWorkers: opts.maxWorkers,
		})
		if err != nil {
			return err
		}
		ctrl.SetObs(cfg.Metrics)
		cfg.Elastic = ctrl
	}

	// Build the coordinator before listening so a bad configuration
	// (e.g. a negative -worker-timeout) fails immediately instead of
	// after all workers have connected.
	co, err := rt.NewCoordinator(mk(), cfg)
	if err != nil {
		return err
	}
	if oo.statusAddr != "" {
		bound, stop, err := obs.Serve(oo.statusAddr, obs.Handler(cfg.Metrics, co.StatusAny, cfg.Spans))
		if err != nil {
			return err
		}
		defer stop()
		fmt.Printf("felaserver: telemetry on http://%s (/metrics /statusz /trace /debug/pprof)\n", bound)
	}
	l, err := transport.Listen(addr)
	if err != nil {
		return err
	}
	defer l.Close()
	fmt.Printf("felaserver: listening on %s, waiting for %d workers\n", l.Addr(), workers)

	conns := make([]transport.Conn, workers)
	for i := range conns {
		c, err := l.Accept()
		if err != nil {
			return err
		}
		conns[i] = c
		fmt.Printf("felaserver: worker connection %d/%d\n", i+1, workers)
	}
	if opts.enabled {
		// Keep admitting joiners for the rest of the session; the accept
		// loop ends when the deferred l.Close() unblocks Accept.
		go func() {
			for {
				c, err := l.Accept()
				if err != nil {
					return
				}
				if err := co.Admit(c); err != nil {
					c.Close()
					return
				}
				fmt.Println("felaserver: admitted a join candidate (effective at the next barrier)")
			}
		}()
	}

	res, err := co.Run(conns)
	if err != nil {
		return err
	}
	for i, loss := range res.Losses {
		fmt.Printf("iteration %3d: loss %.6f\n", i, loss)
	}
	fmt.Printf("tokens per worker: %v (steals: %d)\n", res.TokensByWorker, res.Steals)
	if len(res.Scales) > 0 {
		fmt.Printf("scale events: %v\n", metrics.ScaleSequence(res.Scales))
		for _, ev := range res.Scales {
			fmt.Println("  " + ev.String())
		}
	}
	if ctrl != nil && ctrl.Retuner().Retunes() > 0 {
		fmt.Printf("re-tunes: %d; final shares: %v\n", ctrl.Retuner().Retunes(), ctrl.Retuner().Shares())
	}
	if len(res.Faults) > 0 {
		st := metrics.SummarizeFaults(res.Faults)
		fmt.Printf("faults: %d (by class: %v), dead workers: %v, tokens reassigned: %d\n",
			st.Total, st.ByClass, res.DeadWorkers, res.Reassigned)
		for _, ev := range res.Faults {
			fmt.Println("  " + ev.String())
		}
	}

	if oo.traceJSON != "" {
		f, err := os.Create(oo.traceJSON)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeTrace(f, cfg.Spans); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("felaserver: wrote span trace to %s (load in Perfetto / chrome://tracing)\n", oo.traceJSON)
	}

	ref, err := rt.Sequential(mk(), ds, cfg)
	if err != nil {
		return err
	}
	if minidnn.ParamsEqual(ref.Params, res.Params) {
		fmt.Println("verified: distributed result is bit-identical to sequential SGD")
	} else {
		return fmt.Errorf("distributed result diverged from sequential reference")
	}
	return nil
}
