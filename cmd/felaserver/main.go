// Command felaserver runs the real-time Fela coordinator (Token Server +
// BSP synchronizer) on a TCP address and trains a real MLP on the
// deterministic synthetic dataset together with felaworker processes.
//
// Start the server, then launch -workers felaworker processes pointing
// at the printed address:
//
//	felaserver -addr 127.0.0.1:7070 -workers 4 -iters 20
//	felaworker -addr 127.0.0.1:7070 -wid 0   (… one per worker id)
//
// The server prints per-iteration loss, the token distribution across
// workers, and verifies the result bit-for-bit against the sequential
// reference.
//
// With -worker-timeout set, the session is fault tolerant: workers that
// crash, hang or corrupt the wire are declared dead, their outstanding
// tokens are retrained by the survivors, the run completes on whoever
// is left, and a fault summary is printed at the end. The result stays
// bit-identical to the sequential reference regardless of which workers
// died.
//
// With -elastic, membership is live: the server keeps accepting
// connections for the whole session, so additional `felaworker -join`
// processes become workers at the next iteration barrier, workers may
// drain out gracefully (`felaworker -drain-after N`), and the online
// re-tuner reshapes the token distribution from live per-iteration
// timings after every scale event. -min-workers bounds eviction,
// -max-workers bounds admission. Elastic mode implies fault tolerance
// (a default -worker-timeout is applied if none is set).
//
// With -jobs, the server becomes a multi-tenant job manager instead of
// a single session: `felaworker -pool` processes register once into a
// shared elastic pool, clients submit training jobs over the same port,
// and the -alloc policy (fair-share, priority, throughput-max, oasis)
// decides how the pool is divided, migrating workers between jobs
// through their normal elastic drain/join machinery. Every completed
// job is verified bit-identical to the same job trained alone.
// -max-jobs makes the server exit after that many completions (demo/CI
// mode). -admission gates arrivals with an online admission policy
// (oasis rejects work the pool could only serve past its SLO).
//
// With -cluster-trace, the server replays a recorded JSONL arrival
// trace (see internal/workload) against its own pool on the trace's
// open-loop clock — -trace-scale speeds the clock up — prints a
// cluster summary (admitted/rejected, SLO attainment) when every
// submission has settled, then drains and exits.
//
// With -durable-dir, the server is crash-safe: every scheduling
// decision is appended to a write-ahead ledger under that directory
// before it is acknowledged, and model checkpoints are committed at
// iteration boundaries every -ckpt-every iterations. On boot the
// ledger is replayed and the latest checkpoints are loaded, so a
// killed server restarted on the same directory resumes where it
// died — bit-identical to a run that was never interrupted — while
// workers reconnect through their normal retry (-pool / -retries)
// loops. /healthz serves 503 "restoring" until replay and worker
// rejoin complete. -standby starts a warm standby instead: it tails
// the ledger while another felaserver holds the directory lock and
// takes over the moment the primary dies.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"fela/internal/durable"
	"fela/internal/elastic"
	"fela/internal/jobs"
	"fela/internal/metrics"
	"fela/internal/minidnn"
	"fela/internal/obs"
	"fela/internal/rt"
	"fela/internal/tensor"
	"fela/internal/transport"
	"fela/internal/workload"
)

// sessionConfig derives the shared session parameters both server and
// workers must agree on (see cmd/felaworker).
func sessionConfig(workers, iters int, workerTimeout time.Duration) (rt.Config, func() *minidnn.Network, *minidnn.Dataset) {
	cfg := rt.Config{
		Workers:       workers,
		TotalBatch:    64,
		TokenBatch:    8,
		Iterations:    iters,
		LR:            0.05,
		WorkerTimeout: workerTimeout,
	}
	mk := func() *minidnn.Network { return minidnn.NewMLP(42, 16, 32, 4) }
	ds := minidnn.SyntheticBlobs(7, 256, 16, 4)
	return cfg, mk, ds
}

// elasticOpts bundles the live-membership flags.
type elasticOpts struct {
	enabled    bool
	minWorkers int
	maxWorkers int
}

// obsOpts bundles the telemetry flags. Both default to off, keeping the
// uninstrumented fast path.
type obsOpts struct {
	// statusAddr, when set, serves /metrics, /statusz, /trace and
	// /debug/pprof on that address for the whole session.
	statusAddr string
	// traceJSON, when set, writes the session's distributed spans as
	// Chrome trace_event JSON to that file when the session ends.
	traceJSON string
}

func (o obsOpts) enabled() bool { return o.statusAddr != "" || o.traceJSON != "" }

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "address to listen on")
	workers := flag.Int("workers", 4, "number of workers to wait for")
	iters := flag.Int("iters", 20, "iterations to train")
	workerTimeout := flag.Duration("worker-timeout", 0,
		"fault tolerance: declare a worker dead after this long without progress (0 = strict mode, any fault aborts)")
	elasticMode := flag.Bool("elastic", false,
		"live membership: accept felaworker -join connections for the whole session and re-tune on scale events")
	minWorkers := flag.Int("min-workers", 1, "elastic: never evict below this many live workers")
	maxWorkers := flag.Int("max-workers", 0, "elastic: admission cap for joiners (0 = unbounded)")
	statusAddr := flag.String("status-addr", "",
		"serve live telemetry (/metrics, /statusz, /trace, /debug/pprof) on this address (empty = off)")
	traceJSON := flag.String("trace-json", "",
		"write the session's spans as Chrome trace_event JSON to this file on exit (empty = off)")
	jobsMode := flag.Bool("jobs", false,
		"multi-tenant mode: run a job manager over a shared pool of felaworker -pool processes")
	alloc := flag.String("alloc", "fair-share",
		"jobs: worker allocation policy (fair-share, priority, throughput-max, oasis)")
	admission := flag.String("admission", "",
		"jobs: online admission policy gating arrivals (none, oasis; empty = admit everything)")
	maxJobs := flag.Int("max-jobs", 0,
		"jobs: shut down after this many jobs complete (0 = run until interrupted)")
	clusterTrace := flag.String("cluster-trace", "",
		"jobs: replay this JSONL arrival trace against the pool, print a cluster summary, then drain")
	traceScale := flag.Float64("trace-scale", 1,
		"jobs: speed multiplier for -cluster-trace replay (2 = twice as fast)")
	codec := flag.String("codec", transport.DefaultCodec,
		"wire codec (binary or gob); every felaworker must use the same value")
	compressName := flag.String("compress", "",
		"gradient compression to permit on the report path (exact, fp16, int8, topk; empty = exact). A worker requesting the same codec gets it; everyone else degrades to lossless. Lossy codecs skip the bit-identity verification and report the convergence delta instead")
	kernelPar := flag.Int("kernel-par", 0,
		"compute-kernel fan-out: goroutines per matmul/conv (0 = GOMAXPROCS, 1 = serial)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"on SIGINT/SIGTERM, how long to wait for in-flight work before exiting anyway")
	durableDir := flag.String("durable-dir", "",
		"durability root: write-ahead decision ledger plus iteration-boundary checkpoints; on boot the ledger is replayed and the session/jobs resume (empty = off)")
	ckptEvery := flag.Int("ckpt-every", durable.DefaultEvery,
		"checkpoint interval in iterations (with -durable-dir)")
	standby := flag.Bool("standby", false,
		"warm standby: tail -durable-dir behind the live primary and take over when its lock releases")
	flag.Parse()

	// SIGQUIT dumps the flight-recorder ring as JSONL to stderr and
	// keeps running — the field-debugging hook every binary carries.
	obs.FlightDumpOnSIGQUIT("felaserver")

	tensor.SetParallelism(*kernelPar)

	oo := obsOpts{statusAddr: *statusAddr, traceJSON: *traceJSON}
	var err error
	compress, cerr := transport.ParseCompression(*compressName)
	if cerr != nil {
		err = cerr
	} else if !transport.ValidCodec(*codec) {
		err = fmt.Errorf("unknown codec %q (want %s or %s)", *codec, transport.CodecBinary, transport.CodecGob)
	} else {
		var plane *durable.Plane
		if plane, err = openDurable(*durableDir, *standby); err == nil {
			du := durableOpts{plane: plane, every: *ckptEvery}
			if *jobsMode {
				jo := jobsOpts{
					alloc:      *alloc,
					admission:  *admission,
					maxJobs:    *maxJobs,
					trace:      *clusterTrace,
					traceScale: *traceScale,
				}
				err = runJobs(*addr, *codec, jo, *workerTimeout, oo, du, nil, *drainTimeout)
			} else {
				opts := elasticOpts{enabled: *elasticMode, minWorkers: *minWorkers, maxWorkers: *maxWorkers}
				err = run(*addr, *codec, *workers, *iters, *workerTimeout, opts, oo, du, nil, *drainTimeout, compress)
			}
			if plane != nil {
				if cerr := plane.Close(); err == nil {
					err = cerr
				}
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "felaserver:", err)
		os.Exit(1)
	}
}

// durableOpts carries an opened durability plane into a serving mode.
type durableOpts struct {
	plane *durable.Plane
	every int
}

// sessionJobID is the checkpoint/ledger job id single-session mode
// files its state under (jobs mode ids are 1-based, so 0 is free).
const sessionJobID = 0

// openDurable opens the durability plane at dir (nil plane when dir is
// empty). In standby mode a locked directory is not an error: the
// standby tails the ledger behind the live primary — printing each
// decision as it commits — and takes over the moment the primary's
// flock releases (the kernel drops it on process death).
func openDurable(dir string, standby bool) (*durable.Plane, error) {
	if dir == "" {
		return nil, nil
	}
	plane, err := durable.Open(dir, durable.Options{})
	if err == nil || !standby || !errors.Is(err, durable.ErrLocked) {
		return plane, err
	}
	fmt.Printf("felaserver: standby: %s is held by a live primary, tailing its ledger\n", dir)
	tail := durable.NewTailer(dir)
	for {
		ents, terr := tail.Poll()
		if terr != nil {
			fmt.Fprintf(os.Stderr, "felaserver: standby: ledger tail: %v\n", terr)
		}
		for _, e := range ents {
			fmt.Printf("felaserver: standby: seq %d %s job=%d iter=%d\n", e.Seq, e.Op, e.JobID, e.Iter)
		}
		plane, err = durable.Open(dir, durable.Options{})
		if err == nil {
			fmt.Println("felaserver: standby: primary lock released, taking over")
			return plane, nil
		}
		if !errors.Is(err, durable.ErrLocked) {
			return nil, err
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// ledgerAppend lands a decision in the ledger, best effort (session
// mode keeps serving when the disk misbehaves; the loss is printed).
func ledgerAppend(plane *durable.Plane, e durable.Entry) {
	if plane == nil {
		return
	}
	if _, err := plane.Ledger.Append(e); err != nil {
		fmt.Fprintf(os.Stderr, "felaserver: ledger append: %v\n", err)
	}
}

// jobsOpts bundles the multi-tenant mode flags.
type jobsOpts struct {
	alloc      string
	admission  string
	maxJobs    int
	trace      string
	traceScale float64
}

// signalChan returns sig as-is when tests inject their own channel,
// otherwise installs the real SIGINT/SIGTERM handler. The returned stop
// func must run before the process exits.
func signalChan(sig <-chan os.Signal) (<-chan os.Signal, func()) {
	if sig != nil {
		return sig, func() {}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	return ch, func() { signal.Stop(ch) }
}

// runJobs serves the multi-tenant job manager: one TCP port accepts
// both pool workers and job submissions (the manager classifies each
// connection by its first message). With maxJobs > 0 the server drains
// and exits after that many completions; with a trace it drains once
// every replayed submission has settled. A signal on sig (nil = real
// SIGINT/SIGTERM) drains the manager, bounded by drainTimeout, and
// returns nil for a clean exit. With du.plane set, every scheduling
// decision write-aheads through the ledger and open jobs from a prior
// incarnation are restored before the listener opens.
func runJobs(addr, codec string, jo jobsOpts, workerTimeout time.Duration, oo obsOpts, du durableOpts, sig <-chan os.Signal, drainTimeout time.Duration) error {
	if drainTimeout <= 0 {
		drainTimeout = 30 * time.Second
	}
	pol, ok := jobs.PolicyByName(jo.alloc)
	if !ok {
		return fmt.Errorf("unknown allocation policy %q (want fair-share, priority, throughput-max or oasis)", jo.alloc)
	}
	cfg := jobs.Config{Policy: pol, WorkerTimeout: workerTimeout}
	if jo.admission != "" {
		adm, ok := jobs.AdmissionByName(jo.admission)
		if !ok {
			return fmt.Errorf("unknown admission policy %q (want none or oasis)", jo.admission)
		}
		cfg.Admission = adm
	}
	var tr workload.Trace
	if jo.trace != "" {
		var err error
		if tr, err = workload.Load(jo.trace); err != nil {
			return err
		}
	}
	if oo.enabled() {
		cfg.Metrics = obs.NewRegistry()
		cfg.Spans = obs.NewTracer("felaserver")
	}

	var mgr *jobs.Manager
	// draining flips when shutdown begins (signal, -max-jobs, trace
	// done); /healthz serves 503 from then on so orchestrators stop
	// routing new work at the pool while it winds down. restoring is
	// its boot-time mirror: 503 until the replayed jobs have workers
	// again (or there is nothing to resume).
	var draining, restoring atomic.Bool
	if du.plane != nil {
		cfg.Ledger = du.plane.Ledger
		cfg.Store = du.plane.Store
		cfg.CheckpointEvery = du.every
		st := durable.Reduce(du.plane.Entries)
		cfg.Restore = &st
		fmt.Printf("felaserver: durable: replayed %d ledger entries — %d open jobs to resume, %d settled, next id %d\n",
			len(du.plane.Entries), len(st.Jobs), st.Finished+st.Canceled, st.NextID)
		if len(st.Jobs) > 0 {
			restoring.Store(true)
		}
	}
	completedJobs := 0
	cfg.OnJobDone = func(r jobs.JobResult) {
		// Runs on the manager's event loop: serialized, and Stop is safe.
		if r.Err != nil {
			fmt.Printf("felaserver: job %d (%s) failed after %.2fs: %v\n",
				r.ID, r.Spec.Name, r.Runtime.Seconds(), r.Err)
		} else {
			verified := "DIVERGED from solo training"
			if ref, err := jobs.Reference(r.Spec); err == nil && minidnn.ParamsEqual(ref.Params, r.Result.Params) {
				verified = "bit-identical to solo training"
			}
			fmt.Printf("felaserver: job %d (%s) done: %d iters, final loss %.6f, queued %.2fs, ran %.2fs, %s\n",
				r.ID, r.Spec.Name, r.Spec.Iterations, r.Result.Losses[len(r.Result.Losses)-1],
				r.QueueWait.Seconds(), r.Runtime.Seconds(), verified)
		}
		completedJobs++
		if jo.maxJobs > 0 && completedJobs >= jo.maxJobs {
			fmt.Printf("felaserver: %d jobs complete, draining\n", completedJobs)
			draining.Store(true)
			mgr.Stop()
		}
	}
	mgr = jobs.NewManager(cfg)
	if restoring.Load() {
		// The replayed jobs sit queued until pool workers reconnect
		// through their own retry loops; /healthz flips healthy once the
		// pool has capacity again (or the restored work settles without
		// needing any, e.g. jobs whose final checkpoint already landed).
		go func() {
			for {
				select {
				case <-mgr.Done():
					return
				case <-time.After(50 * time.Millisecond):
				}
				st := mgr.Status()
				if st.Workers > 0 || st.Queued+st.Running == 0 {
					restoring.Store(false)
					fmt.Println("felaserver: durable: restore complete, pool serving")
					return
				}
			}
		}()
	}

	if oo.statusAddr != "" {
		bound, stop, err := obs.Serve(oo.statusAddr, obs.NewHandler(obs.HandlerOptions{
			Registry: cfg.Metrics,
			Status:   mgr.StatusAny,
			Health: func() error {
				if restoring.Load() {
					return errors.New("restoring")
				}
				if draining.Load() {
					return errors.New("job manager is draining")
				}
				select {
				case <-mgr.Done():
					return errors.New("job manager stopped")
				default:
					return nil
				}
			},
			Tracers: []*obs.Tracer{cfg.Spans},
		}))
		if err != nil {
			mgr.Stop()
			<-mgr.Done()
			return err
		}
		defer stop()
		fmt.Printf("felaserver: telemetry on http://%s (/metrics /statusz /trace /debug/pprof)\n", bound)
	}

	l, err := transport.ListenCodec(addr, codec)
	if err != nil {
		mgr.Stop()
		<-mgr.Done()
		return err
	}
	defer l.Close()
	gate := "admit-all"
	if cfg.Admission != nil {
		gate = cfg.Admission.Name()
	}
	fmt.Printf("felaserver: job manager (policy %s, admission %s) listening on %s\n",
		pol.Name(), gate, l.Addr())

	if jo.trace != "" {
		// Replay the trace on its own open-loop clock, wait for every
		// submission to settle, print the cluster summary, then drain.
		go func() {
			results := make(chan jobs.JobResult, len(tr.Events))
			start := time.Now()
			submitted := workload.Replay(tr, jo.traceScale, mgr.Done(), func(e workload.Event) {
				_, ch, err := mgr.SubmitJob(e.Spec, jobs.SubmitOptions{SLO: e.SLO})
				if err != nil {
					results <- jobs.JobResult{Spec: e.Spec, SLO: e.SLO, Err: err}
					return
				}
				go func() { results <- <-ch }()
			})
			var rejected, failed, completed, met int
			for i := 0; i < submitted; i++ {
				switch r := <-results; {
				case errors.Is(r.Err, jobs.ErrRejected):
					rejected++
				case r.Err != nil:
					failed++
				default:
					completed++
					if r.SLO > 0 && r.QueueWait+r.Runtime <= r.SLO {
						met++
					}
				}
			}
			fmt.Printf("felaserver: trace %q replayed in %.2fs: %d submitted, %d rejected, %d completed, %d failed, SLO attainment %.3f\n",
				tr.Name, time.Since(start).Seconds(), submitted, rejected, completed, failed,
				float64(met)/float64(max(submitted, 1)))
			draining.Store(true)
			mgr.Stop()
		}()
	}

	// A signal starts the drain: the manager stops, which closes the
	// listener below and unblocks Accept. The deadline closes the
	// listener even if the pool never finishes draining.
	sigCh, stopSig := signalChan(sig)
	defer stopSig()
	go func() {
		select {
		case s := <-sigCh:
			fmt.Printf("felaserver: %v received, draining job manager (timeout %s)\n", s, drainTimeout)
			draining.Store(true)
			mgr.Stop()
			select {
			case <-mgr.Done():
			case <-time.After(drainTimeout):
				fmt.Println("felaserver: drain deadline passed, closing listener")
				l.Close()
			}
		case <-mgr.Done():
		}
	}()

	// Unblock Accept once the manager drains so the server can exit.
	go func() {
		<-mgr.Done()
		l.Close()
	}()
	for {
		c, err := l.Accept()
		if err != nil {
			break
		}
		mgr.Admit(c)
	}
	draining.Store(true)
	mgr.Stop()
	select {
	case <-mgr.Done():
	case <-time.After(drainTimeout):
		fmt.Println("felaserver: drain deadline passed with the pool still busy, exiting")
		return nil
	}

	if oo.traceJSON != "" {
		f, err := os.Create(oo.traceJSON)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeTrace(f, cfg.Spans); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("felaserver: wrote span trace to %s\n", oo.traceJSON)
	}
	fmt.Printf("felaserver: job manager drained (%d jobs served)\n", completedJobs)
	return nil
}

// run serves one synchronous training session. A signal on sig (nil =
// real SIGINT/SIGTERM) stops accepting joiners and waits up to
// drainTimeout for the in-flight session to finish before exiting 0.
// With du.plane set the session checkpoints through the durability
// plane and resumes from the latest checkpoint on boot; /healthz
// serves 503 "restoring" until the initial worker set has rejoined.
func run(addr, codec string, workers, iters int, workerTimeout time.Duration, opts elasticOpts, oo obsOpts, du durableOpts, sig <-chan os.Signal, drainTimeout time.Duration, compress transport.Compression) error {
	if drainTimeout <= 0 {
		drainTimeout = 30 * time.Second
	}
	if opts.enabled && workerTimeout == 0 {
		// Elastic membership rides on the fault-tolerant machinery (a
		// drain is a planned death); give it a generous default deadline.
		workerTimeout = 10 * time.Second
	}
	cfg, mk, ds := sessionConfig(workers, iters, workerTimeout)
	cfg.Compress = compress

	var draining, restoring atomic.Bool
	if du.plane != nil {
		ckpt, err := du.plane.Store.Load(sessionJobID)
		if err != nil {
			return err
		}
		if ckpt != nil && ckpt.Iter+1 >= iters {
			// The final checkpoint committed before the crash: the crash
			// ate only the verification and exit, so no workers are needed.
			return finishFromCheckpoint(cfg, mk, ds, ckpt)
		}
		if ckpt != nil {
			cfg.Resume = &rt.Resume{Iter: ckpt.Iter, Params: ckpt.Params, Vel: ckpt.Vel, Losses: ckpt.Losses}
			fmt.Printf("felaserver: durable: resuming from checkpoint at iteration %d/%d\n", ckpt.Iter, iters)
		}
		cfg.CheckpointEvery = du.every
		// Store-before-ledger: the checkpoint frame commits, then the
		// barrier lands in the ledger. A failure aborts the session — the
		// coordinator must never run ahead of state it claims is durable.
		cfg.Checkpoint = func(iter int, params, vel [][]float32, losses []float64) error {
			c := &durable.Checkpoint{JobID: sessionJobID, Iter: iter, Params: params, Vel: vel, Losses: losses}
			if err := du.plane.Store.Save(c); err != nil {
				return err
			}
			_, err := du.plane.Ledger.Append(durable.Entry{Op: durable.OpBarrier, JobID: sessionJobID, WID: -1, Iter: iter})
			return err
		}
		// 503 until every initial worker has (re)connected.
		restoring.Store(true)
	}

	if oo.enabled() {
		cfg.Metrics = obs.NewRegistry()
		cfg.Spans = obs.NewTracer("felaserver")
	}

	var ctrl *elastic.Controller
	if opts.enabled {
		var err error
		ctrl, err = elastic.NewController(elastic.Config{
			MinWorkers: opts.minWorkers,
			MaxWorkers: opts.maxWorkers,
		})
		if err != nil {
			return err
		}
		ctrl.SetObs(cfg.Metrics)
		cfg.Elastic = ctrl
	}

	// Build the coordinator before listening so a bad configuration
	// (e.g. a negative -worker-timeout) fails immediately instead of
	// after all workers have connected.
	co, err := rt.NewCoordinator(mk(), cfg)
	if err != nil {
		return err
	}
	if oo.statusAddr != "" {
		bound, stop, err := obs.Serve(oo.statusAddr, obs.NewHandler(obs.HandlerOptions{
			Registry: cfg.Metrics,
			Status:   co.StatusAny,
			Health: func() error {
				if restoring.Load() {
					return errors.New("restoring")
				}
				if draining.Load() {
					return errors.New("session is draining")
				}
				return nil
			},
			Tracers: []*obs.Tracer{cfg.Spans},
		}))
		if err != nil {
			return err
		}
		defer stop()
		fmt.Printf("felaserver: telemetry on http://%s (/metrics /statusz /trace /debug/pprof)\n", bound)
	}
	l, err := transport.ListenCodec(addr, codec)
	if err != nil {
		return err
	}
	defer l.Close()
	fmt.Printf("felaserver: listening on %s (%s codec), waiting for %d workers\n", l.Addr(), codec, workers)

	sigCh, stopSig := signalChan(sig)
	defer stopSig()

	// Accept on a channel so a signal during the wait-for-workers phase
	// still exits cleanly instead of blocking in Accept forever.
	connCh := make(chan transport.Conn)
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			connCh <- c
		}
	}()
	conns := make([]transport.Conn, 0, workers)
	for len(conns) < workers {
		select {
		case c := <-connCh:
			conns = append(conns, c)
			ledgerAppend(du.plane, durable.Entry{Op: durable.OpJoin, JobID: sessionJobID, WID: len(conns) - 1})
			fmt.Printf("felaserver: worker connection %d/%d\n", len(conns), workers)
		case <-acceptDone:
			return fmt.Errorf("listener closed with %d/%d workers connected", len(conns), workers)
		case s := <-sigCh:
			fmt.Printf("felaserver: %v received with %d/%d workers connected, exiting\n", s, len(conns), workers)
			ledgerAppend(du.plane, durable.Entry{Op: durable.OpDrain, JobID: sessionJobID, WID: -1})
			for _, c := range conns {
				c.Close()
			}
			return nil
		}
	}
	// Replay and rejoin are complete: the session is about to train.
	restoring.Store(false)
	if opts.enabled {
		// Keep admitting joiners for the rest of the session; the loop
		// ends when the deferred l.Close() unblocks Accept.
		go func() {
			for c := range connCh {
				if err := co.Admit(c); err != nil {
					c.Close()
					return
				}
				fmt.Println("felaserver: admitted a join candidate (effective at the next barrier)")
			}
		}()
	}

	// Run the session racing the signal: on SIGINT/SIGTERM stop
	// accepting joiners and give the in-flight session drainTimeout to
	// reach its natural barrier-aligned end before exiting anyway.
	type runOutcome struct {
		res *rt.Result
		err error
	}
	runCh := make(chan runOutcome, 1)
	go func() {
		res, err := co.Run(conns)
		runCh <- runOutcome{res, err}
	}()
	var res *rt.Result
	select {
	case o := <-runCh:
		if o.err != nil {
			return o.err
		}
		res = o.res
	case s := <-sigCh:
		fmt.Printf("felaserver: %v received, draining session (timeout %s)\n", s, drainTimeout)
		draining.Store(true)
		ledgerAppend(du.plane, durable.Entry{Op: durable.OpDrain, JobID: sessionJobID, WID: -1})
		l.Close() // no more joiners
		select {
		case o := <-runCh:
			if o.err != nil {
				return o.err
			}
			res = o.res
		case <-time.After(drainTimeout):
			fmt.Println("felaserver: drain deadline passed with the session still running, exiting")
			return nil
		}
	}
	for i, loss := range res.Losses {
		fmt.Printf("iteration %3d: loss %.6f\n", i, loss)
	}
	fmt.Printf("tokens per worker: %v (steals: %d)\n", res.TokensByWorker, res.Steals)
	if len(res.Scales) > 0 {
		fmt.Printf("scale events: %v\n", metrics.ScaleSequence(res.Scales))
		for _, ev := range res.Scales {
			fmt.Println("  " + ev.String())
		}
	}
	if ctrl != nil && ctrl.Retuner().Retunes() > 0 {
		fmt.Printf("re-tunes: %d; final shares: %v\n", ctrl.Retuner().Retunes(), ctrl.Retuner().Shares())
	}
	if len(res.Faults) > 0 {
		st := metrics.SummarizeFaults(res.Faults)
		fmt.Printf("faults: %d (by class: %v), dead workers: %v, tokens reassigned: %d\n",
			st.Total, st.ByClass, res.DeadWorkers, res.Reassigned)
		for _, ev := range res.Faults {
			fmt.Println("  " + ev.String())
		}
	}

	if oo.traceJSON != "" {
		f, err := os.Create(oo.traceJSON)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeTrace(f, cfg.Spans); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("felaserver: wrote span trace to %s (load in Perfetto / chrome://tracing)\n", oo.traceJSON)
	}

	ref, err := rt.Sequential(mk(), ds, cfg)
	if err != nil {
		return err
	}
	if cfg.Compress != transport.CompressExact {
		// Lossy gradient compression gives up the bit-identical guarantee
		// by design; report how far the quantization moved the final loss
		// instead of demanding equality.
		refLoss := ref.Losses[len(ref.Losses)-1]
		gotLoss := res.Losses[len(res.Losses)-1]
		fmt.Printf("lossy compression (%v): final loss %.6f vs sequential %.6f (delta %+.6f)\n",
			cfg.Compress, gotLoss, refLoss, gotLoss-refLoss)
		return nil
	}
	if minidnn.ParamsEqual(ref.Params, res.Params) {
		fmt.Println("verified: distributed result is bit-identical to sequential SGD")
	} else {
		return fmt.Errorf("distributed result diverged from sequential reference")
	}
	return nil
}

// finishFromCheckpoint settles a session whose final checkpoint
// already covers every iteration: the crash ate only the verification
// and exit, so the model is rebuilt from the frame and verified
// against the sequential reference without waiting for any workers.
func finishFromCheckpoint(cfg rt.Config, mk func() *minidnn.Network, ds *minidnn.Dataset, ckpt *durable.Checkpoint) error {
	fmt.Printf("felaserver: durable: checkpoint at iteration %d already covers the session, verifying\n", ckpt.Iter)
	net := mk()
	if err := rt.InstallFlat(net.Params(), ckpt.Params); err != nil {
		return err
	}
	for i, loss := range ckpt.Losses {
		fmt.Printf("iteration %3d: loss %.6f\n", i, loss)
	}
	refCfg := cfg
	refCfg.Resume = nil
	refCfg.Checkpoint = nil
	ref, err := rt.Sequential(mk(), ds, refCfg)
	if err != nil {
		return err
	}
	if !minidnn.ParamsEqual(ref.Params, net.Params()) {
		return fmt.Errorf("restored checkpoint diverged from sequential reference")
	}
	fmt.Println("verified: restored result is bit-identical to sequential SGD")
	return nil
}
