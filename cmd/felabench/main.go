// Command felabench regenerates every table and figure of the paper's
// evaluation on the simulated testbed. With no flags it runs the whole
// suite at the paper's scale (100 iterations per measurement, 5 warm-up
// iterations per tuning case); -quick reduces iteration counts for a
// fast pass.
//
// Usage:
//
//	felabench [-quick] [-experiment all|table1|...|extensions|rt|jobs|wire|cluster|gate]
//	felabench -csvdir out/    # also write plotting-ready CSV series
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fela/internal/experiments"
	"fela/internal/obs"
)

// experimentNames lists every value -experiment accepts, in the order
// they run under "all".
var experimentNames = []string{
	"all", "table1", "fig1", "table2", "fig5", "fig6", "fig7", "fig8",
	"fig9", "fig10", "extensions", "rt", "jobs", "wire", "cluster", "gate",
	"durable",
}

func validExperiment(which string) bool {
	for _, n := range experimentNames {
		if which == n {
			return true
		}
	}
	return false
}

// benchPaths collects every output location the suite can write to.
type benchPaths struct {
	csvDir  string
	rt      string
	jobs    string
	wire    string
	cluster string
	gate    string
	durable string
}

func main() {
	quick := flag.Bool("quick", false, "run with reduced iteration counts")
	which := flag.String("experiment", "all",
		"experiment to run ("+strings.Join(experimentNames, ", ")+")")
	var p benchPaths
	flag.StringVar(&p.csvDir, "csvdir", "", "also write each figure's data series as CSV files into this directory")
	flag.StringVar(&p.rt, "rtjson", "BENCH_rt.json", "path for the rt experiment's machine-readable report")
	flag.StringVar(&p.jobs, "jobsjson", "BENCH_jobs.json", "path for the jobs experiment's machine-readable report")
	flag.StringVar(&p.wire, "wirejson", "BENCH_wire.json", "path for the wire experiment's machine-readable report")
	flag.StringVar(&p.cluster, "clusterjson", "BENCH_cluster.json", "path for the cluster experiment's machine-readable report")
	flag.StringVar(&p.gate, "gatejson", "BENCH_gate.json", "path for the gate experiment's machine-readable report")
	flag.StringVar(&p.durable, "durablejson", "BENCH_durable.json", "path for the durable experiment's machine-readable report")
	flag.Parse()

	obs.FlightDumpOnSIGQUIT("felabench")

	ctx := experiments.Default()
	if *quick {
		ctx = experiments.Quick()
	}
	if err := run(ctx, *which, p, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "felabench:", err)
		os.Exit(1)
	}
}

func run(ctx *experiments.Context, which string, p benchPaths, quick bool) error {
	if !validExperiment(which) {
		return fmt.Errorf("unknown experiment %q (valid: %s)", which, strings.Join(experimentNames, ", "))
	}
	all := which == "all"
	out := func(s string) { fmt.Println(s) }
	writeCSV := func(name, data string) error {
		if p.csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(p.csvDir, 0o755); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(p.csvDir, name), []byte(data), 0o644)
	}

	if all || which == "table1" {
		out(experiments.Table1().Render())
	}
	if all || which == "fig1" {
		r := experiments.Fig1(ctx)
		out(r.Render())
		if err := writeCSV("fig1.csv", r.CSV()); err != nil {
			return err
		}
	}
	if all || which == "table2" {
		t2 := experiments.Table2()
		if err := t2.CheckTable2(); err != nil {
			return err
		}
		out(t2.Render())
	}
	if all || which == "fig5" {
		for _, m := range experiments.BenchModels() {
			r := experiments.Fig5(ctx, m)
			out(r.Render())
			if err := writeCSV("fig5_"+m.Name+".csv", r.CSV()); err != nil {
				return err
			}
		}
	}
	if all || which == "fig6" {
		r, err := experiments.Fig6(ctx, experiments.BenchModels()[0])
		if err != nil {
			return err
		}
		out(r.Render())
		if err := writeCSV("fig6.csv", r.CSV()); err != nil {
			return err
		}
	}
	if all || which == "fig7" {
		r, err := experiments.Fig7(ctx, experiments.BenchModels()[0])
		if err != nil {
			return err
		}
		out(r.Render())
		if err := writeCSV("fig7.csv", r.CSV()); err != nil {
			return err
		}
	}
	if all || which == "fig8" {
		r, err := experiments.Fig8(ctx)
		if err != nil {
			return err
		}
		out(r.Render())
		if err := writeCSV("fig8.csv", r.CSV()); err != nil {
			return err
		}
	}
	if all || which == "fig9" {
		r, err := experiments.Fig9(ctx)
		if err != nil {
			return err
		}
		out(r.Render())
		if err := writeCSV("fig9.csv", r.CSV()); err != nil {
			return err
		}
	}
	if all || which == "fig10" {
		r, err := experiments.Fig10(ctx)
		if err != nil {
			return err
		}
		out(r.Render())
		if err := writeCSV("fig10.csv", r.CSV()); err != nil {
			return err
		}
	}
	if all || which == "extensions" {
		m := experiments.BenchModels()[0]
		sc, err := experiments.Scalability(ctx, m)
		if err != nil {
			return err
		}
		out(sc.Render())
		het, err := experiments.Heterogeneous(ctx, m, 0.6)
		if err != nil {
			return err
		}
		out(het.Render())
		ssp, err := experiments.SSP(ctx, m)
		if err != nil {
			return err
		}
		out(ssp.Render())
		cb, err := experiments.CommBreakdown(ctx, m)
		if err != nil {
			return err
		}
		out(cb.Render())
	}
	if all || which == "rt" {
		if err := runRTBench(quick, p.rt, out); err != nil {
			return err
		}
	}
	if all || which == "jobs" {
		if err := runJobsBench(quick, p.jobs, out); err != nil {
			return err
		}
	}
	if all || which == "wire" {
		if err := runWireBench(quick, p.wire, out); err != nil {
			return err
		}
	}
	if all || which == "cluster" {
		if err := runClusterBench(quick, p.cluster, out); err != nil {
			return err
		}
	}
	if all || which == "gate" {
		if err := runGateBench(quick, p.gate, out); err != nil {
			return err
		}
	}
	if all || which == "durable" {
		if err := runDurableBench(quick, p.durable, out); err != nil {
			return err
		}
	}
	return nil
}
