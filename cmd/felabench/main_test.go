package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"fela/internal/experiments"
)

func TestRunSingleExperiments(t *testing.T) {
	ctx := experiments.Quick()
	for _, which := range []string{"table1", "table2", "fig1", "fig5"} {
		if err := run(ctx, which, benchPaths{}, true); err != nil {
			t.Errorf("%s: %v", which, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(experiments.Quick(), "fig99", benchPaths{}, true); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestCSVOutput(t *testing.T) {
	dir := t.TempDir()
	ctx := experiments.Quick()
	if err := run(ctx, "fig8", benchPaths{csvDir: dir}, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig8.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty CSV")
	}
	if string(data[:5]) != "model" {
		t.Errorf("CSV header wrong: %q", data[:20])
	}
}

func TestRTBenchJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_rt.json")
	if err := run(experiments.Quick(), "rt", benchPaths{rt: path}, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report rtBenchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("BENCH_rt.json does not parse: %v", err)
	}
	if report.Name != "rt-engine" || !report.Quick {
		t.Errorf("report header = %+v", report)
	}
	want := map[string]bool{
		"sequential": false, "rt-1": false, "rt-2": false,
		"rt-4": false, "rt-4-straggler": false, "rt-4-elastic": false,
	}
	for _, e := range report.Entries {
		if _, ok := want[e.Policy]; !ok {
			t.Errorf("unexpected policy %q", e.Policy)
			continue
		}
		want[e.Policy] = true
		if e.ItersPerSec <= 0 || e.TokensPerSec <= 0 {
			t.Errorf("%s: non-positive throughput: %+v", e.Policy, e)
		}
		if !e.BitIdentical {
			t.Errorf("%s: result not bit-identical to the sequential reference", e.Policy)
		}
	}
	for policy, seen := range want {
		if !seen {
			t.Errorf("policy %q missing from report", policy)
		}
	}
}

func TestClusterBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster bench replays a 100-job trace; skipped in -short")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_cluster.json")
	if err := run(experiments.Quick(), "cluster", benchPaths{cluster: path}, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report clusterBenchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("BENCH_cluster.json does not parse: %v", err)
	}
	if report.Name != "cluster" || !report.Quick {
		t.Errorf("report header = %+v", report)
	}
	want := map[string]bool{
		"fair-share": false, "priority": false,
		"throughput-max": false, "oasis": false,
	}
	for _, e := range report.Entries {
		if _, ok := want[e.Policy]; !ok {
			t.Errorf("unexpected policy %q", e.Policy)
			continue
		}
		want[e.Policy] = true
		if e.Submitted != report.TraceJobs {
			t.Errorf("%s: %d submitted, want the whole %d-job trace", e.Policy, e.Submitted, report.TraceJobs)
		}
		if e.Admitted != e.Completed+e.Failed || e.Admitted+e.Rejected != e.Submitted {
			t.Errorf("%s: inconsistent counts: %+v", e.Policy, e)
		}
		if e.Policy == "oasis" {
			if e.Admission != "oasis" {
				t.Errorf("oasis entry missing its admission gate: %+v", e)
			}
		} else if e.Rejected != 0 {
			t.Errorf("%s: rejected %d jobs with no admission gate", e.Policy, e.Rejected)
		}
		if e.MakespanSeconds <= 0 || e.Completed == 0 {
			t.Errorf("%s: degenerate run: %+v", e.Policy, e)
		}
		if e.SampleSize == 0 || !e.SampleBitIdentical {
			t.Errorf("%s: bit-identity spot-check failed: size=%d ok=%v",
				e.Policy, e.SampleSize, e.SampleBitIdentical)
		}
	}
	for policy, seen := range want {
		if !seen {
			t.Errorf("policy %q missing from report", policy)
		}
	}
}

func TestJobsBenchJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_jobs.json")
	if err := run(experiments.Quick(), "jobs", benchPaths{jobs: path}, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report jobsBenchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("BENCH_jobs.json does not parse: %v", err)
	}
	if report.Name != "jobs-manager" || !report.Quick {
		t.Errorf("report header = %+v", report)
	}
	want := map[string]bool{
		"sequential": false, "fair-share": false,
		"priority": false, "throughput-max": false,
	}
	for _, e := range report.Entries {
		if _, ok := want[e.Policy]; !ok {
			t.Errorf("unexpected policy %q", e.Policy)
			continue
		}
		want[e.Policy] = true
		if e.MakespanSeconds <= 0 || e.AggTokensPerSec <= 0 {
			t.Errorf("%s: non-positive throughput: %+v", e.Policy, e)
		}
		if e.Fairness <= 0 || e.Fairness > 1.0001 {
			t.Errorf("%s: fairness index %v out of (0,1]", e.Policy, e.Fairness)
		}
		if len(e.Jobs) != 2 {
			t.Errorf("%s: %d jobs in entry, want 2", e.Policy, len(e.Jobs))
		}
		for _, j := range e.Jobs {
			if !j.BitIdentical {
				t.Errorf("%s: job %s not bit-identical to solo training", e.Policy, j.Name)
			}
			if j.WorkerIters <= 0 {
				t.Errorf("%s: job %s consumed no worker-iterations", e.Policy, j.Name)
			}
		}
	}
	for policy, seen := range want {
		if !seen {
			t.Errorf("policy %q missing from report", policy)
		}
	}
}

// TestGateBenchJSON runs the serving-gateway benchmark end to end (it
// is the slowest test here: a million requests through the gateway) and
// checks the acceptance invariants on the machine-readable report.
func TestGateBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("gate bench pushes 1e6 requests; skipped with -short")
	}
	if raceEnabled {
		t.Skip("gate bench asserts latency bounds; meaningless under the race detector (the gateway's race coverage is TestGateHammer)")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_gate.json")
	if err := run(experiments.Quick(), "gate", benchPaths{gate: path}, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report gateBenchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("BENCH_gate.json does not parse: %v", err)
	}
	if report.Name != "gate" || !report.Quick {
		t.Errorf("report header = %+v", report)
	}
	if report.TotalRequests < gateTargetRequests {
		t.Errorf("total requests %d below the %d floor", report.TotalRequests, int64(gateTargetRequests))
	}
	if report.Shards < 2 || len(report.ShardCompleted) != report.Shards {
		t.Errorf("want >=2 shards with completions, got %+v", report.ShardCompleted)
	}
	for i, c := range report.ShardCompleted {
		if c <= 0 {
			t.Errorf("shard %d completed no jobs", i)
		}
	}
	// At 2x overload the edge must shed a substantial share of offered
	// submissions while keeping admitted-submit latency bounded.
	if report.ShedRate < 0.25 {
		t.Errorf("shed rate %.3f at %.1fx overload; the edge is not shedding", report.ShedRate, report.OverloadFactor)
	}
	if report.Submit.P99Ms <= 0 || report.Submit.P99Ms > 1000 {
		t.Errorf("admitted submit p99 %.2fms not bounded", report.Submit.P99Ms)
	}
	if report.Unsettled != 0 {
		t.Errorf("%d admitted submissions never settled", report.Unsettled)
	}
	if report.SubmitAdmitted+report.SubmitShed != report.SubmitOffered {
		t.Errorf("edge ledger does not sum: %+v", report)
	}
	if report.Fairness < 0.9 {
		t.Errorf("Jain fairness %.4f under uniform offered load", report.Fairness)
	}
}

func TestDurableBenchJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_durable.json")
	if err := run(experiments.Quick(), "durable", benchPaths{durable: path}, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report durableBenchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("BENCH_durable.json does not parse: %v", err)
	}
	if report.Name != "durable-plane" || !report.Quick {
		t.Errorf("report header = %+v", report)
	}
	if report.BaselineSeconds <= 0 {
		t.Errorf("baseline seconds = %v, want > 0", report.BaselineSeconds)
	}
	if len(report.Overheads) == 0 {
		t.Fatal("no overhead entries")
	}
	sawDefault := false
	for _, e := range report.Overheads {
		if e.Checkpoints <= 0 || e.Seconds <= 0 {
			t.Errorf("overhead entry %+v has empty measurements", e)
		}
		if e.Every == 10 {
			sawDefault = true
		}
	}
	if !sawDefault {
		t.Error("no overhead entry at the default checkpoint interval")
	}
	if len(report.Recovery) != 3 {
		t.Fatalf("recovery entries = %d, want 3", len(report.Recovery))
	}
	last := 0
	for _, e := range report.Recovery {
		if e.Params <= last {
			t.Errorf("recovery %s: params %d not increasing (prev %d)", e.Model, e.Params, last)
		}
		last = e.Params
		if e.TotalMS <= 0 {
			t.Errorf("recovery %s: total %vms, want > 0", e.Model, e.TotalMS)
		}
	}
	if report.Replay.Entries <= 0 || report.Replay.AppendPerSec <= 0 || report.Replay.ReplayPerSec <= 0 {
		t.Errorf("replay = %+v, want positive throughput", report.Replay)
	}
}
