package main

import (
	"os"
	"path/filepath"
	"testing"

	"fela/internal/experiments"
)

func TestRunSingleExperiments(t *testing.T) {
	ctx := experiments.Quick()
	for _, which := range []string{"table1", "table2", "fig1", "fig5"} {
		if err := run(ctx, which, ""); err != nil {
			t.Errorf("%s: %v", which, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(experiments.Quick(), "fig99", ""); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestCSVOutput(t *testing.T) {
	dir := t.TempDir()
	ctx := experiments.Quick()
	if err := run(ctx, "fig8", dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig8.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty CSV")
	}
	if string(data[:5]) != "model" {
		t.Errorf("CSV header wrong: %q", data[:20])
	}
}
