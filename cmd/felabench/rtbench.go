package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"fela/internal/elastic"
	"fela/internal/minidnn"
	"fela/internal/obs"
	"fela/internal/rt"
	"fela/internal/transport"
)

// rtBenchEntry is one policy's throughput measurement on the real
// training engine.
type rtBenchEntry struct {
	Policy       string  `json:"policy"`
	Workers      int     `json:"workers"`
	Iterations   int     `json:"iterations"`
	Seconds      float64 `json:"seconds"`
	ItersPerSec  float64 `json:"iters_per_sec"`
	TokensPerSec float64 `json:"tokens_per_sec"`
	Steals       int     `json:"steals"`
	BitIdentical bool    `json:"bit_identical"`
	// Obs is the session's final telemetry snapshot: latency quantiles
	// and the per-kind transport traffic breakdown (internal/obs).
	Obs *rtObsSummary `json:"obs,omitempty"`
}

// histQuantiles condenses one latency histogram for the report.
type histQuantiles struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// rtObsSummary is the telemetry slice embedded per bench entry.
type rtObsSummary struct {
	TokenLatency   histQuantiles    `json:"token_latency_seconds"`
	IterTime       histQuantiles    `json:"iter_time_seconds"`
	BarrierTime    histQuantiles    `json:"barrier_time_seconds"`
	MessagesByKind map[string]int64 `json:"messages_by_kind,omitempty"`
	BytesByKind    map[string]int64 `json:"bytes_by_kind,omitempty"`
}

func quantiles(s obs.HistSnapshot) histQuantiles {
	q := histQuantiles{Count: s.Count, P50: s.Quantile(0.5), P90: s.Quantile(0.9), P99: s.Quantile(0.99)}
	if s.Count > 0 {
		q.Mean = s.Sum / float64(s.Count)
	}
	return q
}

// summarizeObs condenses the registry a bench run recorded into. The
// traffic maps are keyed by the rendered label set (dir/kind).
func summarizeObs(reg *obs.Registry) *rtObsSummary {
	return &rtObsSummary{
		TokenLatency:   quantiles(reg.Histogram(rt.MetricTokenSeconds, nil).Snapshot()),
		IterTime:       quantiles(reg.Histogram(rt.MetricIterSeconds, nil).Snapshot()),
		BarrierTime:    quantiles(reg.Histogram(rt.MetricBarrierSeconds, nil).Snapshot()),
		MessagesByKind: reg.CounterValues(transport.MetricMessages),
		BytesByKind:    reg.CounterValues(transport.MetricBytes),
	}
}

// rtBenchReport is the machine-readable BENCH_rt.json payload.
type rtBenchReport struct {
	Name      string         `json:"name"`
	Quick     bool           `json:"quick"`
	TimeStamp string         `json:"timestamp"`
	Entries   []rtBenchEntry `json:"entries"`
}

// rtBenchConfig builds the shared workload: a real MLP on a synthetic
// blob dataset, sized so a full run takes seconds, not minutes.
func rtBenchConfig(quick bool) rt.Config {
	iters := 120
	if quick {
		iters = 24
	}
	return rt.Config{
		Workers:    4,
		TotalBatch: 64,
		TokenBatch: 8,
		Iterations: iters,
		LR:         0.05,
	}
}

func rtBenchNet() *minidnn.Network       { return minidnn.NewMLP(42, 16, 32, 4) }
func rtBenchData() *minidnn.Dataset      { return minidnn.SyntheticBlobs(7, 256, 16, 4) }
func rtTokens(cfg rt.Config) int         { return cfg.TotalBatch / cfg.TokenBatch }
func rtSecondsSince(t time.Time) float64 { return time.Since(t).Seconds() }

// runRTBench measures the real-time engine's throughput per policy and
// writes the report as JSON to path.
func runRTBench(quick bool, path string, out func(string)) error {
	cfg := rtBenchConfig(quick)
	ref, err := rt.Sequential(rtBenchNet(), rtBenchData(), cfg)
	if err != nil {
		return fmt.Errorf("rt bench: sequential reference: %w", err)
	}

	report := rtBenchReport{
		Name:      "rt-engine",
		Quick:     quick,
		TimeStamp: time.Now().UTC().Format(time.RFC3339),
	}

	// Sequential throughput (the single-machine reference).
	{
		c := cfg
		start := time.Now()
		res, err := rt.Sequential(rtBenchNet(), rtBenchData(), c)
		if err != nil {
			return err
		}
		report.Entries = append(report.Entries, rtBenchEntry{
			Policy: "sequential", Workers: 1, Iterations: c.Iterations,
			Seconds:      rtSecondsSince(start),
			BitIdentical: minidnn.ParamsEqual(ref.Params, res.Params),
		})
	}

	type variant struct {
		name  string
		build func() rt.Config
	}
	variants := []variant{
		{"rt-1", func() rt.Config { c := cfg; c.Workers = 1; return c }},
		{"rt-2", func() rt.Config { c := cfg; c.Workers = 2; return c }},
		{"rt-4", func() rt.Config { return cfg }},
		{"rt-4-straggler", func() rt.Config {
			c := cfg
			c.Delay = func(iter, wid int) time.Duration {
				if wid == 0 && iter%4 == 0 {
					return 2 * time.Millisecond
				}
				return 0
			}
			return c
		}},
		{"rt-4-elastic", func() rt.Config {
			c := cfg
			c.WorkerTimeout = 2 * time.Second
			ctrl, err := elastic.NewController(elastic.Config{MinWorkers: 1})
			if err != nil {
				panic(err) // static config; cannot fail
			}
			c.Elastic = ctrl
			return c
		}},
	}
	for _, v := range variants {
		c := v.build()
		c.Metrics = obs.NewRegistry()
		start := time.Now()
		res, err := rt.Train(rtBenchNet, rtBenchData(), c)
		if err != nil {
			return fmt.Errorf("rt bench: %s: %w", v.name, err)
		}
		secs := rtSecondsSince(start)
		entry := rtBenchEntry{
			Policy: v.name, Workers: c.Workers, Iterations: c.Iterations,
			Seconds:      secs,
			Steals:       res.Steals,
			BitIdentical: minidnn.ParamsEqual(ref.Params, res.Params),
			Obs:          summarizeObs(c.Metrics),
		}
		if secs > 0 {
			entry.ItersPerSec = float64(c.Iterations) / secs
			entry.TokensPerSec = float64(c.Iterations*rtTokens(c)) / secs
		}
		report.Entries = append(report.Entries, entry)
	}
	// The sequential entry's rates, filled late so the loop above stays
	// uniform.
	if e := &report.Entries[0]; e.Seconds > 0 {
		e.ItersPerSec = float64(e.Iterations) / e.Seconds
		e.TokensPerSec = float64(e.Iterations*rtTokens(cfg)) / e.Seconds
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("rt bench: %w", err)
	}
	out(renderRTBench(report, path))
	return nil
}

// renderRTBench formats the report for the terminal.
func renderRTBench(r rtBenchReport, path string) string {
	s := fmt.Sprintf("RT engine throughput (real training; wrote %s)\n", path)
	s += fmt.Sprintf("%-16s %8s %10s %12s %8s %10s %10s %s\n",
		"policy", "workers", "iters/s", "tokens/s", "steals", "tok-p50", "tok-p99", "bit-identical")
	for _, e := range r.Entries {
		p50, p99 := "-", "-"
		if e.Obs != nil && e.Obs.TokenLatency.Count > 0 {
			p50 = fmt.Sprintf("%.1fms", e.Obs.TokenLatency.P50*1e3)
			p99 = fmt.Sprintf("%.1fms", e.Obs.TokenLatency.P99*1e3)
		}
		s += fmt.Sprintf("%-16s %8d %10.1f %12.1f %8d %10s %10s %v\n",
			e.Policy, e.Workers, e.ItersPerSec, e.TokensPerSec, e.Steals, p50, p99, e.BitIdentical)
	}
	return s
}
