//go:build !race

package main

// raceEnabled reports whether the race detector is compiled in; timing
// benchmarks skip their latency assertions under its ~10x slowdown.
const raceEnabled = false
