package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fela/internal/gate"
	"fela/internal/jobs"
	"fela/internal/obs"
	"fela/internal/transport"
)

// Gate experiment: the serving-edge benchmark. A gateway over two
// Manager shards (each a TokenDelay-simulated pool) takes a combined
// closed+open-loop load:
//
//   - open loop: every tenant submits real jobs over real TCP HTTP at
//     gateOverload× its token-bucket rate, so by construction roughly
//     (1 - 1/gateOverload) of offered submissions must shed with 429 —
//     the edge-backpressure regime the gateway exists for;
//   - closed loop: pollers hammer the status/gate/healthz routes
//     through the gateway's handler directly until the total request
//     count crosses gateTargetRequests, the "millions of users
//     refreshing a dashboard" side of the workload;
//   - a few tenants watch their jobs over live SSE streams.
//
// The report cares about four things: sustained RPS, tail latency
// (p50/p99/p999) for admitted submits and for status reads under that
// RPS, the shed rate at 2× overload, and per-tenant fairness (Jain
// index over admitted submissions — every tenant offers the same load,
// so admission should split evenly).
const (
	// gateTargetRequests is the total-request floor for one run; the
	// acceptance bar is one million requests through the serving path.
	gateTargetRequests = 1_000_000
	// gateOverload is the offered-to-admitted submit ratio per tenant.
	gateOverload = 2.0
	// gateTokenDelay is the simulated per-token compute cost in the
	// shards' pool workers (see jobsTokenDelay for the methodology).
	gateTokenDelay = 200 * time.Microsecond
	gateShards     = 2
)

// gateBenchTenant is one tenant's view of the edge ledger.
type gateBenchTenant struct {
	Tenant   string `json:"tenant"`
	Offered  int64  `json:"offered"`
	Admitted int64  `json:"admitted"`
	Shed     int64  `json:"shed"`
}

// gateLatencies summarizes one route class's latency distribution.
type gateLatencies struct {
	Requests int64   `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	P999Ms   float64 `json:"p999_ms"`
}

// gateBenchReport is the machine-readable BENCH_gate.json payload.
type gateBenchReport struct {
	Name      string `json:"name"`
	Quick     bool   `json:"quick"`
	TimeStamp string `json:"timestamp"`

	Shards           int     `json:"shards"`
	WorkersPerShard  int     `json:"workers_per_shard"`
	Tenants          int     `json:"tenants"`
	OverloadFactor   float64 `json:"overload_factor"`
	TenantRatePerSec float64 `json:"tenant_rate_per_sec"`

	TotalRequests  int64   `json:"total_requests"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	SustainedRPS   float64 `json:"sustained_rps"`

	// Submit is the open-loop side: offered over real TCP, admitted
	// latencies only (a shed 429 is not a served submission).
	SubmitOffered  int64         `json:"submit_offered"`
	SubmitAdmitted int64         `json:"submit_admitted"`
	SubmitShed     int64         `json:"submit_shed"`
	ShedRate       float64       `json:"shed_rate"`
	Submit         gateLatencies `json:"submit_latency"`
	// Status is the closed-loop side, through the handler directly.
	Status  gateLatencies `json:"status_latency"`
	Streams int           `json:"streams"`

	// JobsOK / SchedulerRejected / Unsettled audit the serving ledger:
	// Unsettled must be zero — every admitted submit got exactly one
	// terminal answer.
	JobsOK            int64 `json:"jobs_ok"`
	JobsFailed        int64 `json:"jobs_failed"`
	JobsCanceled      int64 `json:"jobs_canceled"`
	SchedulerRejected int64 `json:"scheduler_rejected"`
	Unsettled         int64 `json:"unsettled"`

	// Fairness is the Jain index over per-tenant admitted counts.
	Fairness  float64           `json:"fairness_index"`
	PerTenant []gateBenchTenant `json:"per_tenant"`
	// ShardCompleted is each shard's completed-job count — both must be
	// non-zero for the routing claim to hold.
	ShardCompleted []int `json:"shard_completed"`

	GateMetrics map[string]map[string]int64 `json:"gate_metrics,omitempty"`
}

func msQuantiles(lat []float64) gateLatencies {
	sort.Float64s(lat)
	return gateLatencies{
		Requests: int64(len(lat)),
		P50Ms:    quantile(lat, 0.50) * 1000,
		P99Ms:    quantile(lat, 0.99) * 1000,
		P999Ms:   quantile(lat, 0.999) * 1000,
	}
}

func jainIndex64(xs []int64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += float64(x)
		sq += float64(x) * float64(x)
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

func runGateBench(quick bool, path string, out func(string)) error {
	nTenants := 8
	workersPerShard := 4
	tenantRate := 40.0 // admitted submits/sec/tenant
	window := 6 * time.Second
	if quick {
		tenantRate = 30
		window = 3 * time.Second
	}

	reg := obs.NewRegistry()
	var mgrs []*jobs.Manager
	var backends []gate.Shard
	for s := 0; s < gateShards; s++ {
		mgr := jobs.NewManager(jobs.Config{Tick: 50 * time.Millisecond, Metrics: reg})
		dial := func() (transport.Conn, error) {
			select {
			case <-mgr.Done():
				return nil, fmt.Errorf("pool stopped")
			default:
			}
			a, b := transport.Pair()
			mgr.Admit(b)
			return a, nil
		}
		for w := 0; w < workersPerShard; w++ {
			go func() {
				_, _ = jobs.RunPoolWorker(dial, jobs.PoolWorkerOptions{
					TokenDelay: func(int, int) time.Duration { return gateTokenDelay },
				})
			}()
		}
		mgrs = append(mgrs, mgr)
		backends = append(backends, mgr)
	}
	defer func() {
		for _, m := range mgrs {
			m.Stop()
		}
		for _, m := range mgrs {
			<-m.Done()
		}
	}()

	gw, err := gate.New(gate.Config{
		Shards:     backends,
		TenantRate: tenantRate,
		// A small burst keeps the bucket honest at 2× overload; a large
		// one would admit the whole window in one gulp.
		TenantBurst: 8,
		TenantQuota: 64,
		QueueBound:  1024,
		AdmitWait:   time.Millisecond,
		Metrics:     reg,
	})
	if err != nil {
		return err
	}
	defer gw.Close()
	srv := httptest.NewServer(gw)
	defer srv.Close()

	// jobsLedger shares submitted job ids with the closed-loop pollers.
	type jobRef struct{ id, tenant string }
	var (
		ledgerMu sync.RWMutex
		ledger   []jobRef

		total      atomic.Int64 // every request of any kind
		offered    atomic.Int64
		admitted   atomic.Int64
		shedCount  atomic.Int64
		benchFail  atomic.Int64
		streamsRun atomic.Int64
	)
	count := func(n int64) { total.Add(n) }

	// pollOnce drives one read through the gateway's handler directly
	// (no TCP: the closed-loop side measures the serving path, not the
	// bench's socket stack) and returns its latency in seconds.
	pollOnce := func(rng *rand.Rand, i int) float64 {
		ledgerMu.RLock()
		n := len(ledger)
		var ref jobRef
		if n > 0 {
			ref = ledger[rng.Intn(n)]
		}
		ledgerMu.RUnlock()
		route, tenant := "/healthz", ""
		switch {
		case n > 0 && i%64 != 0:
			route, tenant = "/v1/jobs/"+ref.id, ref.tenant
		case i%128 == 0:
			route = "/v1/gate"
		}
		req := httptest.NewRequest("GET", route, nil)
		if tenant != "" {
			req.Header.Set("X-Fela-Tenant", tenant)
		}
		w := httptest.NewRecorder()
		t0 := time.Now()
		gw.ServeHTTP(w, req)
		lat := time.Since(t0).Seconds()
		count(1)
		if w.Code != http.StatusOK {
			benchFail.Add(1)
		}
		return lat
	}

	start := time.Now()

	// --- phase 1, open loop: every tenant offers submissions at
	// gateOverload× its token-bucket budget for the whole window. Each
	// POST runs on its own goroutine (per-tenant concurrency cap 64) so
	// the offered schedule holds even when response latency grows —
	// tying the next submit to the previous response would throttle the
	// offered load to whatever the gateway admits and overload shedding
	// would never appear.
	var (
		tickerWG  sync.WaitGroup
		submitWG  sync.WaitGroup
		subMu     sync.Mutex
		allSubmit []float64
	)
	body := `{"name": "gatebench", "iterations": 1, "total_batch": 8, "token_batch": 8, "max_workers": 1}`
	for tn := 0; tn < nTenants; tn++ {
		tickerWG.Add(1)
		go func(tn int) {
			defer tickerWG.Done()
			tenant := fmt.Sprintf("tenant-%02d", tn)
			interval := time.Duration(float64(time.Second) / (tenantRate * gateOverload))
			sem := make(chan struct{}, 64)
			end := time.Now().Add(window)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for time.Now().Before(end) {
				<-tick.C
				sem <- struct{}{}
				offered.Add(1)
				count(1)
				submitWG.Add(1)
				go func() {
					defer func() { <-sem; submitWG.Done() }()
					t0 := time.Now()
					req, _ := http.NewRequest("POST", srv.URL+"/v1/jobs", strings.NewReader(body))
					req.Header.Set("X-Fela-Tenant", tenant)
					resp, err := srv.Client().Do(req)
					if err != nil {
						benchFail.Add(1)
						return
					}
					lat := time.Since(t0).Seconds()
					var ack struct {
						Job string `json:"job"`
						ID  string `json:"id"`
					}
					json.NewDecoder(resp.Body).Decode(&ack)
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusAccepted, http.StatusOK:
						admitted.Add(1)
						subMu.Lock()
						allSubmit = append(allSubmit, lat)
						subMu.Unlock()
						id := ack.Job
						if id == "" {
							id = ack.ID
						}
						ledgerMu.Lock()
						ledger = append(ledger, jobRef{id, tenant})
						ledgerMu.Unlock()
					case http.StatusTooManyRequests, http.StatusServiceUnavailable:
						shedCount.Add(1)
					case http.StatusUnprocessableEntity:
						admitted.Add(1) // reached a shard; settled as rejected
					default:
						benchFail.Add(1)
					}
				}()
			}
		}(tn)
	}

	// --- SSE watchers alongside phase 1: one live stream per tenant
	// over real TCP, re-opened on a fresh job as each stream ends.
	var streamWG sync.WaitGroup
	for tn := 0; tn < nTenants; tn++ {
		streamWG.Add(1)
		go func(tn int) {
			defer streamWG.Done()
			tenant := fmt.Sprintf("tenant-%02d", tn)
			deadline := time.Now().Add(window)
			ctx, cancel := context.WithDeadline(context.Background(), deadline.Add(2*time.Second))
			defer cancel()
			for time.Now().Before(deadline) {
				ledgerMu.RLock()
				var ref jobRef
				for _, r := range ledger {
					if r.tenant == tenant {
						ref = r
					}
				}
				ledgerMu.RUnlock()
				if ref.id == "" {
					time.Sleep(10 * time.Millisecond)
					continue
				}
				count(1)
				req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/v1/jobs/"+ref.id+"/stream", nil)
				req.Header.Set("X-Fela-Tenant", tenant)
				resp, err := srv.Client().Do(req)
				if err != nil {
					if ctx.Err() == nil {
						benchFail.Add(1)
					}
					return
				}
				// Reads until the done event closes the stream (or the
				// context deadline cuts a stream on a deeply queued job).
				if _, err := io.Copy(io.Discard, resp.Body); err == nil {
					streamsRun.Add(1)
				}
				resp.Body.Close()
			}
		}(tn)
	}

	// Paced pollers alongside phase 1: a light closed-loop read load so
	// submit latency is measured with reads in flight, without the
	// full-speed sprint starving the submit path of CPU.
	phase1Done := make(chan struct{})
	warmPolls := make([][]float64, 2)
	var warmWG sync.WaitGroup
	for p := range warmPolls {
		warmWG.Add(1)
		go func(p int) {
			defer warmWG.Done()
			rng := rand.New(rand.NewSource(int64(100 + p)))
			for i := 0; ; i++ {
				select {
				case <-phase1Done:
					return
				default:
				}
				warmPolls[p] = append(warmPolls[p], pollOnce(rng, i))
				time.Sleep(time.Millisecond)
			}
		}(p)
	}

	tickerWG.Wait()
	submitWG.Wait()
	streamWG.Wait()
	close(phase1Done)
	warmWG.Wait()

	// Zero-unsettled before the read sprint: every admitted submission
	// must get its terminal answer (the queued tail drains at pool
	// speed).
	drainDeadline := time.Now().Add(120 * time.Second)
	for gw.Inflight() > 0 && time.Now().Before(drainDeadline) {
		time.Sleep(10 * time.Millisecond)
	}

	// --- phase 2, closed loop: sprint the status plane until the run
	// crosses the million-request floor.
	nPollers := 8
	pollLats := make([][]float64, nPollers)
	var pollWG sync.WaitGroup
	for p := 0; p < nPollers; p++ {
		pollWG.Add(1)
		go func(p int) {
			defer pollWG.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			lats := make([]float64, 0, gateTargetRequests/nPollers+1024)
			for i := 0; total.Load() < gateTargetRequests; i++ {
				lats = append(lats, pollOnce(rng, i))
			}
			pollLats[p] = lats
		}(p)
	}
	pollWG.Wait()
	elapsed := time.Since(start)
	st := gw.Status()

	if benchFail.Load() > 0 {
		return fmt.Errorf("gate bench: %d requests failed outside the protocol", benchFail.Load())
	}
	var perTenant []gateBenchTenant
	var admittedByTenant []int64
	for _, ts := range st.Tenants {
		perTenant = append(perTenant, gateBenchTenant{
			Tenant: ts.Tenant, Offered: ts.Admitted + ts.Shed,
			Admitted: ts.Admitted, Shed: ts.Shed,
		})
		admittedByTenant = append(admittedByTenant, ts.Admitted)
	}
	var allPoll []float64
	for _, l := range warmPolls {
		allPoll = append(allPoll, l...)
	}
	for _, l := range pollLats {
		allPoll = append(allPoll, l...)
	}
	shardCompleted := make([]int, gateShards)
	for i, m := range mgrs {
		if ps := m.Status(); ps != nil {
			shardCompleted[i] = ps.Completed
		}
	}

	report := gateBenchReport{
		Name:              "gate",
		Quick:             quick,
		TimeStamp:         time.Now().UTC().Format(time.RFC3339),
		Shards:            gateShards,
		WorkersPerShard:   workersPerShard,
		Tenants:           nTenants,
		OverloadFactor:    gateOverload,
		TenantRatePerSec:  tenantRate,
		TotalRequests:     total.Load(),
		ElapsedSeconds:    elapsed.Seconds(),
		SustainedRPS:      float64(total.Load()) / elapsed.Seconds(),
		SubmitOffered:     offered.Load(),
		SubmitAdmitted:    admitted.Load(),
		SubmitShed:        shedCount.Load(),
		ShedRate:          float64(shedCount.Load()) / float64(max(offered.Load(), 1)),
		Submit:            msQuantiles(allSubmit),
		Status:            msQuantiles(allPoll),
		Streams:           int(streamsRun.Load()),
		JobsOK:            st.JobsOK,
		JobsFailed:        st.JobsFailed,
		JobsCanceled:      st.JobsCanceled,
		SchedulerRejected: st.SchedulerRejected,
		Unsettled:         gw.Inflight(),
		Fairness:          jainIndex64(admittedByTenant),
		PerTenant:         perTenant,
		ShardCompleted:    shardCompleted,
		GateMetrics: map[string]map[string]int64{
			gate.MetricRequests: reg.CounterValues(gate.MetricRequests),
			gate.MetricShed:     reg.CounterValues(gate.MetricShed),
			gate.MetricSettled:  reg.CounterValues(gate.MetricSettled),
		},
	}

	out("")
	out(fmt.Sprintf("=== Serving gateway: closed+open loop at %.0fx overload (%d shards x %d workers)",
		gateOverload, gateShards, workersPerShard))
	out(fmt.Sprintf("  %d requests in %.2fs  ->  %.0f req/s sustained",
		report.TotalRequests, report.ElapsedSeconds, report.SustainedRPS))
	out(fmt.Sprintf("  submits: %d offered, %d admitted, %d shed (shed rate %.3f at %.1fx overload)",
		report.SubmitOffered, report.SubmitAdmitted, report.SubmitShed, report.ShedRate, gateOverload))
	out(fmt.Sprintf("  submit latency  p50 %.2fms  p99 %.2fms  p999 %.2fms (admitted only)",
		report.Submit.P50Ms, report.Submit.P99Ms, report.Submit.P999Ms))
	out(fmt.Sprintf("  status latency  p50 %.3fms  p99 %.3fms  p999 %.3fms over %d polls",
		report.Status.P50Ms, report.Status.P99Ms, report.Status.P999Ms, report.Status.Requests))
	out(fmt.Sprintf("  jobs: %d ok, %d failed, %d canceled, %d scheduler-rejected, %d unsettled",
		report.JobsOK, report.JobsFailed, report.JobsCanceled, report.SchedulerRejected, report.Unsettled))
	out(fmt.Sprintf("  fairness (Jain over admitted): %.4f across %d tenants; shard completions %v",
		report.Fairness, nTenants, shardCompleted))

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	out(fmt.Sprintf("  wrote %s", path))
	return nil
}
