package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"time"

	"fela/internal/jobs"
	"fela/internal/minidnn"
	"fela/internal/obs"
	"fela/internal/transport"
	"fela/internal/workload"
)

// Cluster-mode experiment: a synthesized open-loop arrival trace (the
// full run replays 1000 Poisson arrivals, quick 100) against a
// TokenDelay-simulated worker pool, once per scheduling configuration.
// The admission-controlled OASiS entry is the paper's point: under
// overload it keeps admitted jobs inside their SLOs while the
// admit-everything policies drag the whole population late.
const (
	// clusterTokenDelay is the simulated per-token compute cost every
	// pool worker injects (see jobsTokenDelay for the methodology). It
	// is set high enough that token compute dominates per-iteration
	// overhead AND the trace's offered load lands ~1.3× over pool
	// capacity — the overload regime where the scheduling
	// configurations actually diverge. SLOs are derived from the same
	// cost (slack × the job's ideal single-worker runtime).
	clusterTokenDelay = 25 * time.Millisecond
	// clusterSampleSize bounds the per-entry bit-identity verification:
	// that many completed jobs are re-trained sequentially and compared
	// parameter-for-parameter.
	clusterSampleSize = 5
)

// clusterCase is one scheduling configuration of the sweep.
type clusterCase struct {
	policy    jobs.AllocPolicy
	admission jobs.AdmissionPolicy // nil = admit everything
}

func clusterCases() []clusterCase {
	return []clusterCase{
		{policy: jobs.FairShare{}},
		{policy: jobs.Priority{}},
		{policy: &jobs.ThroughputMax{}},
		{policy: jobs.NewOASiS(), admission: jobs.NewOASiS()},
	}
}

// clusterBenchEntry is one configuration's aggregate outcome.
type clusterBenchEntry struct {
	Policy      string `json:"policy"`
	Admission   string `json:"admission,omitempty"`
	PoolWorkers int    `json:"pool_workers"`

	Submitted int `json:"submitted"`
	Admitted  int `json:"admitted"`
	Rejected  int `json:"rejected"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`

	MakespanSeconds float64 `json:"makespan_seconds"`
	// QueueWaitP50/P99Seconds summarize admitted jobs' submission-to-
	// start latency.
	QueueWaitP50Seconds float64 `json:"queue_wait_p50_seconds"`
	QueueWaitP99Seconds float64 `json:"queue_wait_p99_seconds"`
	// SLOAttainment is jobs finishing inside their SLO over ALL
	// submissions — a rejected job counts as a miss, so admission
	// control cannot win by rejecting everything.
	SLOAttainment    float64 `json:"slo_attainment"`
	AdmittedFraction float64 `json:"admitted_fraction"`
	// Fairness is the Jain index over completed jobs' worker-iterations.
	Fairness        float64 `json:"fairness_index"`
	AggTokensPerSec float64 `json:"agg_tokens_per_sec"`

	// SampleBitIdentical reports the determinism spot-check: sampled
	// completed jobs re-trained sequentially and compared bitwise.
	SampleBitIdentical bool `json:"sample_bit_identical"`
	SampleSize         int  `json:"sample_size"`

	PoolMetrics map[string]map[string]int64 `json:"pool_metrics,omitempty"`
}

// clusterBenchReport is the machine-readable BENCH_cluster.json payload.
type clusterBenchReport struct {
	Name        string              `json:"name"`
	Quick       bool                `json:"quick"`
	TimeStamp   string              `json:"timestamp"`
	TraceJobs   int                 `json:"trace_jobs"`
	Generator   string              `json:"generator"`
	Seed        int64               `json:"seed"`
	PoolWorkers int                 `json:"pool_workers"`
	Entries     []clusterBenchEntry `json:"entries"`
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// runClusterPool replays the trace against a fresh pool under one
// scheduling configuration.
func runClusterPool(cs clusterCase, nWorkers int, tr workload.Trace) (clusterBenchEntry, error) {
	reg := obs.NewRegistry()
	mgr := jobs.NewManager(jobs.Config{
		Policy:    cs.policy,
		Admission: cs.admission,
		Tick:      20 * time.Millisecond,
		Metrics:   reg,
	})
	dial := func() (transport.Conn, error) {
		select {
		case <-mgr.Done():
			return nil, fmt.Errorf("pool stopped")
		default:
		}
		a, b := transport.Pair()
		mgr.Admit(b)
		return a, nil
	}
	workersDone := make(chan error, nWorkers)
	for i := 0; i < nWorkers; i++ {
		go func() {
			_, err := jobs.RunPoolWorker(dial, jobs.PoolWorkerOptions{
				Metrics:    reg,
				TokenDelay: func(int, int) time.Duration { return clusterTokenDelay },
			})
			workersDone <- err
		}()
	}

	entry := clusterBenchEntry{
		Policy:      cs.policy.Name(),
		PoolWorkers: nWorkers,
	}
	if cs.admission != nil {
		entry.Admission = cs.admission.Name()
	}

	// Open-loop replay: submissions fire on the trace's own clock
	// regardless of how far behind the pool falls.
	results := make(chan jobs.JobResult, len(tr.Events))
	start := time.Now()
	submitted := workload.Replay(tr, 1, nil, func(e workload.Event) {
		_, ch, err := mgr.SubmitJob(e.Spec, jobs.SubmitOptions{SLO: e.SLO})
		if err != nil {
			results <- jobs.JobResult{Spec: e.Spec, SLO: e.SLO, Err: err}
			return
		}
		go func() { results <- <-ch }()
	})

	var all []jobs.JobResult
	for i := 0; i < submitted; i++ {
		all = append(all, <-results)
	}
	entry.MakespanSeconds = time.Since(start).Seconds()

	mgr.Stop()
	<-mgr.Done()
	for i := 0; i < nWorkers; i++ {
		if err := <-workersDone; err != nil {
			return clusterBenchEntry{}, fmt.Errorf("pool worker: %w", err)
		}
	}

	entry.Submitted = submitted
	var waits []float64
	var iters []int
	var done []jobs.JobResult
	totalTokens := 0
	met := 0
	for _, r := range all {
		switch {
		case errors.Is(r.Err, jobs.ErrRejected):
			entry.Rejected++
			continue
		case r.Err != nil:
			entry.Failed++
		default:
			entry.Completed++
			done = append(done, r)
			iters = append(iters, r.WorkerIters)
			totalTokens += r.Spec.Iterations * (r.Spec.TotalBatch / r.Spec.TokenBatch)
			if r.SLO > 0 && r.QueueWait+r.Runtime <= r.SLO {
				met++
			}
		}
		waits = append(waits, r.QueueWait.Seconds())
	}
	entry.Admitted = entry.Completed + entry.Failed
	sort.Float64s(waits)
	entry.QueueWaitP50Seconds = quantile(waits, 0.50)
	entry.QueueWaitP99Seconds = quantile(waits, 0.99)
	if submitted > 0 {
		entry.SLOAttainment = float64(met) / float64(submitted)
		entry.AdmittedFraction = float64(entry.Admitted) / float64(submitted)
	}
	entry.Fairness = jainIndex(iters)
	if entry.MakespanSeconds > 0 {
		entry.AggTokensPerSec = float64(totalTokens) / entry.MakespanSeconds
	}

	// Determinism spot-check: an evenly spaced sample of completed jobs
	// must match their solo sequential references bitwise. The trace's
	// bounded seed spread keeps the reference cost trivial.
	entry.SampleBitIdentical = true
	if len(done) > 0 {
		step := len(done) / clusterSampleSize
		if step == 0 {
			step = 1
		}
		for i := 0; i < len(done) && entry.SampleSize < clusterSampleSize; i += step {
			r := done[i]
			ref, err := jobs.Reference(r.Spec)
			if err != nil {
				return clusterBenchEntry{}, err
			}
			entry.SampleSize++
			if !minidnn.ParamsEqual(ref.Params, r.Result.Params) {
				entry.SampleBitIdentical = false
			}
		}
	}

	entry.PoolMetrics = map[string]map[string]int64{}
	for _, name := range []string{
		jobs.MetricCompleted, jobs.MetricLeases, jobs.MetricReleases,
		jobs.MetricReturns, jobs.MetricRebalances, jobs.MetricAdmission,
	} {
		if vals := reg.CounterValues(name); len(vals) > 0 {
			entry.PoolMetrics[name] = vals
		}
	}
	return entry, nil
}

// runClusterBench synthesizes the arrival trace, sweeps the scheduling
// configurations and writes BENCH_cluster.json.
func runClusterBench(quick bool, path string, out func(string)) error {
	// Arrival rates put the offered load at roughly twice the pool's
	// token capacity — deep enough overload that an admit-everything
	// policy drags the whole population past its SLOs.
	nJobs, nWorkers, rate := 1000, 16, 64.0
	if quick {
		nJobs, nWorkers, rate = 100, 8, 35.0
	}
	const seed = 4242
	tr, err := workload.Synthesize(
		workload.Poisson{Rate: rate}, workload.DefaultMix(clusterTokenDelay), nJobs, seed)
	if err != nil {
		return fmt.Errorf("cluster bench: %w", err)
	}
	tr.Name = "cluster-poisson"

	report := clusterBenchReport{
		Name:        "cluster",
		Quick:       quick,
		TimeStamp:   time.Now().UTC().Format(time.RFC3339),
		TraceJobs:   nJobs,
		Generator:   tr.Generator,
		Seed:        seed,
		PoolWorkers: nWorkers,
	}
	for _, cs := range clusterCases() {
		entry, err := runClusterPool(cs, nWorkers, tr)
		if err != nil {
			return fmt.Errorf("cluster bench: %s: %w", cs.policy.Name(), err)
		}
		report.Entries = append(report.Entries, entry)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("cluster bench: %w", err)
	}
	out(renderClusterBench(report, path))
	return nil
}

// renderClusterBench formats the report for the terminal.
func renderClusterBench(r clusterBenchReport, path string) string {
	s := fmt.Sprintf("Cluster mode: %d-job %s trace on %d workers (wrote %s)\n",
		r.TraceJobs, r.Generator, r.PoolWorkers, path)
	s += fmt.Sprintf("%-16s %-10s %9s %9s %10s %9s %9s %9s %s\n",
		"policy", "admission", "makespan", "slo-att", "admitted", "p50 wait", "p99 wait", "fairness", "sample-ok")
	for _, e := range r.Entries {
		adm := e.Admission
		if adm == "" {
			adm = "-"
		}
		s += fmt.Sprintf("%-16s %-10s %8.2fs %9.3f %6d/%-3d %8.2fs %8.2fs %9.3f %v\n",
			e.Policy, adm, e.MakespanSeconds, e.SLOAttainment,
			e.Admitted, e.Submitted, e.QueueWaitP50Seconds, e.QueueWaitP99Seconds,
			e.Fairness, e.SampleBitIdentical)
	}
	return s
}
