package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"fela/internal/minidnn"
	"fela/internal/rt"
	"fela/internal/transport"
)

// The wire benchmark measures the fast path the binary codec was built
// for: serializing VGG-scale parameter broadcasts. VGG-16 carries about
// 138M float32 parameters; the full run uses 1/8 of that (a 69 MB
// frame) so a gob baseline still finishes in seconds, quick mode 1/64.
const vggParams = 138_000_000

// wireCodecEntry is one (codec, kind) microbenchmark: ns and heap bytes
// per encode and per decode of a representative frame.
type wireCodecEntry struct {
	Codec      string  `json:"codec"`
	Kind       string  `json:"kind"`
	Floats     int     `json:"floats"`
	FrameBytes int     `json:"frame_bytes"`
	EncodeNsOp float64 `json:"encode_ns_per_op"`
	EncodeBOp  float64 `json:"encode_bytes_per_op"`
	DecodeNsOp float64 `json:"decode_ns_per_op"`
	DecodeBOp  float64 `json:"decode_bytes_per_op"`
}

// wireSessionEntry is one end-to-end 4-worker TCP training session.
type wireSessionEntry struct {
	Codec        string  `json:"codec"`
	Workers      int     `json:"workers"`
	Iterations   int     `json:"iterations"`
	Seconds      float64 `json:"seconds"`
	TokensPerSec float64 `json:"tokens_per_sec"`
	BitIdentical bool    `json:"bit_identical"`
}

// wireSummary states the acceptance ratios on the iter-start frame.
type wireSummary struct {
	Kind             string  `json:"kind"`
	EncodeSpeedup    float64 `json:"encode_speedup"`
	DecodeSpeedup    float64 `json:"decode_speedup"`
	EncodeAllocRatio float64 `json:"encode_alloc_ratio"`
	DecodeAllocRatio float64 `json:"decode_alloc_ratio"`
}

// wireBenchReport is the machine-readable BENCH_wire.json payload.
type wireBenchReport struct {
	Name      string             `json:"name"`
	Quick     bool               `json:"quick"`
	TimeStamp string             `json:"timestamp"`
	Codec     []wireCodecEntry   `json:"codec_micro"`
	Sessions  []wireSessionEntry `json:"sessions"`
	Summary   wireSummary        `json:"summary"`
}

// wireIterStart builds the hot broadcast frame: n float32 parameters
// split into layer-sized tensors like a flattened deep CNN.
func wireIterStart(n int) *transport.Message {
	var chunks [][]float32
	for rem := n; rem > 0; {
		c := rem
		if c > 1<<20 {
			c = 1 << 20
		}
		s := make([]float32, c)
		for i := range s {
			s[i] = float32(i%113) * 0.25
		}
		chunks = append(chunks, s)
		rem -= c
	}
	return &transport.Message{Kind: transport.KindIterStart, Iter: 5, Params: chunks}
}

// wireMessages are the frames measured per codec: the bulk broadcast,
// a gradient report (1/100 of the broadcast: one token's slice), and
// the two tiny control frames.
func wireMessages(scale int) []*transport.Message {
	grads := wireIterStart(vggParams / scale / 100).Params
	return []*transport.Message{
		wireIterStart(vggParams / scale),
		{Kind: transport.KindReport, WID: 2, Iter: 5,
			Token: transport.TokenInfo{ID: 9, Seq: 1, Lo: 8, Hi: 16},
			Grads: grads, Loss: 0.75},
		{Kind: transport.KindAssign, Iter: 2,
			Token: transport.TokenInfo{ID: 17, Seq: 3, Lo: 24, Hi: 32, Owner: 1}},
		{Kind: transport.KindRequest, WID: 1, Iter: 4},
	}
}

// measure times fn over iters runs (after one warm-up call) and returns
// wall ns/op and heap bytes/op from the runtime's TotalAlloc delta.
func measure(iters int, fn func() error) (nsOp, bOp float64, err error) {
	if err := fn(); err != nil { // warm up pools and gob type state
		return 0, 0, err
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return float64(elapsed.Nanoseconds()) / float64(iters),
		float64(m1.TotalAlloc-m0.TotalAlloc) / float64(iters), nil
}

// benchCodecKind measures encode and decode of m under one codec.
func benchCodecKind(codec string, m *transport.Message, iters int) (wireCodecEntry, error) {
	e := wireCodecEntry{Codec: codec, Kind: m.Kind.String()}
	for _, p := range m.Params {
		e.Floats += len(p)
	}
	for _, g := range m.Grads {
		e.Floats += len(g)
	}

	var frame []byte
	var encode, decode func() error
	switch codec {
	case transport.CodecBinary:
		// The pooled path tcpConn.Send really runs.
		encode = func() error {
			buf, err := transport.EncodeBinaryPooled(m)
			if err != nil {
				return err
			}
			transport.ReleaseFrame(buf)
			return nil
		}
		var err error
		frame, err = transport.EncodeBinary(m)
		if err != nil {
			return e, err
		}
		decode = func() error {
			got, err := transport.DecodeBinary(frame)
			if err != nil {
				return err
			}
			got.Release()
			return nil
		}
	case transport.CodecGob:
		encode = func() error {
			_, err := transport.EncodeFrame(m)
			return err
		}
		var err error
		frame, err = transport.EncodeFrame(m)
		if err != nil {
			return e, err
		}
		decode = func() error {
			_, err := transport.DecodeFrame(frame)
			return err
		}
	default:
		return e, fmt.Errorf("wire bench: unknown codec %q", codec)
	}
	e.FrameBytes = len(frame)

	var err error
	if e.EncodeNsOp, e.EncodeBOp, err = measure(iters, encode); err != nil {
		return e, fmt.Errorf("wire bench: %s encode %s: %w", codec, e.Kind, err)
	}
	if e.DecodeNsOp, e.DecodeBOp, err = measure(iters, decode); err != nil {
		return e, fmt.Errorf("wire bench: %s decode %s: %w", codec, e.Kind, err)
	}
	return e, nil
}

// runWireSession trains the shared rt bench workload end to end over
// real TCP under the named codec and reports tokens/sec.
func runWireSession(codec string, quick bool, ref *rt.Result) (wireSessionEntry, error) {
	cfg := rtBenchConfig(quick)
	e := wireSessionEntry{Codec: codec, Workers: cfg.Workers, Iterations: cfg.Iterations}

	l, err := transport.ListenCodec("127.0.0.1:0", codec)
	if err != nil {
		return e, err
	}
	defer l.Close()

	conns := make([]transport.Conn, cfg.Workers)
	acceptErr := make(chan error, 1)
	go func() {
		for i := range conns {
			c, err := l.Accept()
			if err != nil {
				acceptErr <- err
				return
			}
			conns[i] = c
		}
		acceptErr <- nil
	}()
	workerErrs := make(chan error, cfg.Workers)
	for wid := 0; wid < cfg.Workers; wid++ {
		wid := wid
		go func() {
			c, err := transport.DialCodec(l.Addr(), codec)
			if err != nil {
				workerErrs <- err
				return
			}
			defer c.Close()
			workerErrs <- rt.NewWorker(wid, rtBenchNet(), rtBenchData(), cfg).Run(c)
		}()
	}
	if err := <-acceptErr; err != nil {
		return e, err
	}

	co, err := rt.NewCoordinator(rtBenchNet(), cfg)
	if err != nil {
		return e, err
	}
	start := time.Now()
	res, err := co.Run(conns)
	if err != nil {
		return e, err
	}
	e.Seconds = time.Since(start).Seconds()
	for i := 0; i < cfg.Workers; i++ {
		if err := <-workerErrs; err != nil {
			return e, err
		}
	}
	if e.Seconds > 0 {
		e.TokensPerSec = float64(cfg.Iterations*rtTokens(cfg)) / e.Seconds
	}
	e.BitIdentical = minidnn.ParamsEqual(ref.Params, res.Params)
	return e, nil
}

// runWireBench measures the wire fast path (codec microbenchmarks plus
// end-to-end sessions) and writes the report as JSON to path.
func runWireBench(quick bool, path string, out func(string)) error {
	scale, bulkIters := 8, 5
	if quick {
		scale, bulkIters = 64, 10
	}

	report := wireBenchReport{
		Name:      "wire-path",
		Quick:     quick,
		TimeStamp: time.Now().UTC().Format(time.RFC3339),
	}

	msgs := wireMessages(scale)
	for _, codec := range []string{transport.CodecBinary, transport.CodecGob} {
		for _, m := range msgs {
			iters := bulkIters
			if m.Kind == transport.KindAssign || m.Kind == transport.KindRequest {
				iters = 10_000 // control frames are sub-microsecond
			}
			e, err := benchCodecKind(codec, m, iters)
			if err != nil {
				return err
			}
			report.Codec = append(report.Codec, e)
		}
	}

	// Acceptance ratios on the iter-start frame (entry 0 per codec).
	bin, gob := report.Codec[0], report.Codec[len(msgs)]
	report.Summary = wireSummary{
		Kind:             bin.Kind,
		EncodeSpeedup:    ratio(gob.EncodeNsOp, bin.EncodeNsOp),
		DecodeSpeedup:    ratio(gob.DecodeNsOp, bin.DecodeNsOp),
		EncodeAllocRatio: ratio(gob.EncodeBOp, bin.EncodeBOp),
		DecodeAllocRatio: ratio(gob.DecodeBOp, bin.DecodeBOp),
	}

	ref, err := rt.Sequential(rtBenchNet(), rtBenchData(), rtBenchConfig(quick))
	if err != nil {
		return fmt.Errorf("wire bench: sequential reference: %w", err)
	}
	for _, codec := range []string{transport.CodecBinary, transport.CodecGob} {
		e, err := runWireSession(codec, quick, ref)
		if err != nil {
			return fmt.Errorf("wire bench: %s session: %w", codec, err)
		}
		report.Sessions = append(report.Sessions, e)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("wire bench: %w", err)
	}
	out(renderWireBench(report, path))
	return nil
}

func ratio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

// renderWireBench formats the report for the terminal.
func renderWireBench(r wireBenchReport, path string) string {
	s := fmt.Sprintf("Wire codec fast path (wrote %s)\n", path)
	s += fmt.Sprintf("%-8s %-12s %12s %14s %14s %14s %14s\n",
		"codec", "kind", "frame-bytes", "enc-ns/op", "enc-B/op", "dec-ns/op", "dec-B/op")
	for _, e := range r.Codec {
		s += fmt.Sprintf("%-8s %-12s %12d %14.0f %14.0f %14.0f %14.0f\n",
			e.Codec, e.Kind, e.FrameBytes, e.EncodeNsOp, e.EncodeBOp, e.DecodeNsOp, e.DecodeBOp)
	}
	s += fmt.Sprintf("iter-start binary vs gob: encode %.1fx faster / %.0fx fewer bytes allocated, decode %.1fx faster / %.0fx fewer\n",
		r.Summary.EncodeSpeedup, r.Summary.EncodeAllocRatio, r.Summary.DecodeSpeedup, r.Summary.DecodeAllocRatio)
	s += fmt.Sprintf("%-8s %8s %8s %12s %s\n", "codec", "workers", "iters", "tokens/s", "bit-identical")
	for _, e := range r.Sessions {
		s += fmt.Sprintf("%-8s %8d %8d %12.1f %v\n",
			e.Codec, e.Workers, e.Iterations, e.TokensPerSec, e.BitIdentical)
	}
	return s
}
