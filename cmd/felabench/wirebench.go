package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"fela/internal/minidnn"
	"fela/internal/obs"
	"fela/internal/rt"
	"fela/internal/tensor"
	"fela/internal/transport"
)

// The wire benchmark measures the fast path the binary codec was built
// for: serializing VGG-scale parameter broadcasts. VGG-16 carries about
// 138M float32 parameters; the full run uses 1/8 of that (a 69 MB
// frame) so a gob baseline still finishes in seconds, quick mode 1/64.
const vggParams = 138_000_000

// wireCodecEntry is one (codec, kind) microbenchmark: ns and heap bytes
// per encode and per decode of a representative frame.
type wireCodecEntry struct {
	Codec      string  `json:"codec"`
	Kind       string  `json:"kind"`
	Floats     int     `json:"floats"`
	FrameBytes int     `json:"frame_bytes"`
	EncodeNsOp float64 `json:"encode_ns_per_op"`
	EncodeBOp  float64 `json:"encode_bytes_per_op"`
	DecodeNsOp float64 `json:"decode_ns_per_op"`
	DecodeBOp  float64 `json:"decode_bytes_per_op"`
}

// wireSessionEntry is one end-to-end 4-worker TCP training session.
type wireSessionEntry struct {
	Codec        string  `json:"codec"`
	Workers      int     `json:"workers"`
	Iterations   int     `json:"iterations"`
	Seconds      float64 `json:"seconds"`
	TokensPerSec float64 `json:"tokens_per_sec"`
	BitIdentical bool    `json:"bit_identical"`
}

// kernelBenchEntry is one matmul shape timed serial (fan-out 1) versus
// parallel (fan-out = GOMAXPROCS). Cores records the machine honestly:
// on a single-core container the speedup is ≈1 by construction and the
// multi-core claim is re-measured where GOMAXPROCS > 1 (CI).
type kernelBenchEntry struct {
	Shape        string  `json:"shape"`
	MACs         int64   `json:"macs"`
	Cores        int     `json:"cores"`
	SerialNsOp   float64 `json:"serial_ns_per_op"`
	ParallelNsOp float64 `json:"parallel_ns_per_op"`
	Speedup      float64 `json:"speedup"`
}

// compressSessionEntry is one (kernel mode × gradient codec) end-to-end
// TCP training session: wire cost of the report path plus the
// convergence price the lossy codec paid.
type compressSessionEntry struct {
	Compression string  `json:"compression"`
	Kernel      string  `json:"kernel"` // "serial" or "parallel"
	Workers     int     `json:"workers"`
	Iterations  int     `json:"iterations"`
	Seconds     float64 `json:"seconds"`
	// ReportBytesPerIter is the decoded grads-section wire bytes per
	// iteration on the coordinator (all workers' reports summed).
	ReportBytesPerIter float64 `json:"report_bytes_per_iter"`
	// RatioVsExact is the exact codec's bytes-per-iter over this one's,
	// within the same kernel mode (1.0 for exact itself).
	RatioVsExact float64 `json:"ratio_vs_exact"`
	FinalLoss    float64 `json:"final_loss"`
	// LossDeltaVsExact is this session's final loss minus the same
	// kernel mode's exact session — the convergence price of quantizing.
	LossDeltaVsExact float64 `json:"loss_delta_vs_exact"`
	// BitIdentical only holds (and is only required) for exact.
	BitIdentical bool `json:"bit_identical"`
}

// wireSummary states the acceptance ratios on the iter-start frame plus
// the kernel and compression headlines.
type wireSummary struct {
	Kind             string  `json:"kind"`
	EncodeSpeedup    float64 `json:"encode_speedup"`
	DecodeSpeedup    float64 `json:"decode_speedup"`
	EncodeAllocRatio float64 `json:"encode_alloc_ratio"`
	DecodeAllocRatio float64 `json:"decode_alloc_ratio"`
	// Cores is GOMAXPROCS during the run; KernelSpeedup is serial over
	// parallel ns/op at the largest matmul shape (≈1 when Cores == 1).
	Cores         int     `json:"cores"`
	KernelSpeedup float64 `json:"kernel_speedup"`
	// Report-path byte ratios, exact over lossy, parallel-kernel rows.
	FP16ReportRatio float64 `json:"fp16_report_ratio"`
	Int8ReportRatio float64 `json:"int8_report_ratio"`
	TopKReportRatio float64 `json:"topk_report_ratio"`
}

// wireBenchReport is the machine-readable BENCH_wire.json payload.
type wireBenchReport struct {
	Name      string                 `json:"name"`
	Quick     bool                   `json:"quick"`
	TimeStamp string                 `json:"timestamp"`
	Codec     []wireCodecEntry       `json:"codec_micro"`
	Kernels   []kernelBenchEntry     `json:"kernel_micro"`
	Sessions  []wireSessionEntry     `json:"sessions"`
	Compress  []compressSessionEntry `json:"compress_sessions"`
	Summary   wireSummary            `json:"summary"`
}

// wireIterStart builds the hot broadcast frame: n float32 parameters
// split into layer-sized tensors like a flattened deep CNN.
func wireIterStart(n int) *transport.Message {
	var chunks [][]float32
	for rem := n; rem > 0; {
		c := rem
		if c > 1<<20 {
			c = 1 << 20
		}
		s := make([]float32, c)
		for i := range s {
			s[i] = float32(i%113) * 0.25
		}
		chunks = append(chunks, s)
		rem -= c
	}
	return &transport.Message{Kind: transport.KindIterStart, Iter: 5, Params: chunks}
}

// wireMessages are the frames measured per codec: the bulk broadcast,
// a gradient report (1/100 of the broadcast: one token's slice), and
// the two tiny control frames.
func wireMessages(scale int) []*transport.Message {
	grads := wireIterStart(vggParams / scale / 100).Params
	return []*transport.Message{
		wireIterStart(vggParams / scale),
		{Kind: transport.KindReport, WID: 2, Iter: 5,
			Token: transport.TokenInfo{ID: 9, Seq: 1, Lo: 8, Hi: 16},
			Grads: grads, Loss: 0.75},
		{Kind: transport.KindAssign, Iter: 2,
			Token: transport.TokenInfo{ID: 17, Seq: 3, Lo: 24, Hi: 32, Owner: 1}},
		{Kind: transport.KindRequest, WID: 1, Iter: 4},
	}
}

// measure times fn over iters runs (after one warm-up call) and returns
// wall ns/op and heap bytes/op from the runtime's TotalAlloc delta.
func measure(iters int, fn func() error) (nsOp, bOp float64, err error) {
	if err := fn(); err != nil { // warm up pools and gob type state
		return 0, 0, err
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return float64(elapsed.Nanoseconds()) / float64(iters),
		float64(m1.TotalAlloc-m0.TotalAlloc) / float64(iters), nil
}

// benchCodecKind measures encode and decode of m under one codec.
func benchCodecKind(codec string, m *transport.Message, iters int) (wireCodecEntry, error) {
	e := wireCodecEntry{Codec: codec, Kind: m.Kind.String()}
	for _, p := range m.Params {
		e.Floats += len(p)
	}
	for _, g := range m.Grads {
		e.Floats += len(g)
	}

	var frame []byte
	var encode, decode func() error
	switch codec {
	case transport.CodecBinary:
		// The pooled path tcpConn.Send really runs.
		encode = func() error {
			buf, err := transport.EncodeBinaryPooled(m)
			if err != nil {
				return err
			}
			transport.ReleaseFrame(buf)
			return nil
		}
		var err error
		frame, err = transport.EncodeBinary(m)
		if err != nil {
			return e, err
		}
		decode = func() error {
			got, err := transport.DecodeBinary(frame)
			if err != nil {
				return err
			}
			got.Release()
			return nil
		}
	case transport.CodecGob:
		encode = func() error {
			_, err := transport.EncodeFrame(m)
			return err
		}
		var err error
		frame, err = transport.EncodeFrame(m)
		if err != nil {
			return e, err
		}
		decode = func() error {
			_, err := transport.DecodeFrame(frame)
			return err
		}
	default:
		return e, fmt.Errorf("wire bench: unknown codec %q", codec)
	}
	e.FrameBytes = len(frame)

	var err error
	if e.EncodeNsOp, e.EncodeBOp, err = measure(iters, encode); err != nil {
		return e, fmt.Errorf("wire bench: %s encode %s: %w", codec, e.Kind, err)
	}
	if e.DecodeNsOp, e.DecodeBOp, err = measure(iters, decode); err != nil {
		return e, fmt.Errorf("wire bench: %s decode %s: %w", codec, e.Kind, err)
	}
	return e, nil
}

// benchKernels times MatMul serial (fan-out 1) versus parallel (fan-out
// GOMAXPROCS) at shapes big enough to clear the parallel cutoff. The
// kernels are bit-identical by construction, so only time is measured.
func benchKernels(quick bool) ([]kernelBenchEntry, error) {
	shapes := [][3]int{{256, 512, 512}, {128, 1024, 1024}}
	iters := 5
	if quick {
		shapes = [][3]int{{96, 256, 256}, {64, 512, 512}}
		iters = 10
	}
	defer tensor.SetParallelism(0)

	var out []kernelBenchEntry
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		rng := rand.New(rand.NewSource(11))
		a := tensor.New(m, k).Randn(rng, 1)
		b := tensor.New(k, n).Randn(rng, 1)
		mul := func() error { tensor.MatMul(a, b); return nil }

		e := kernelBenchEntry{
			Shape: fmt.Sprintf("%dx%dx%d", m, k, n),
			MACs:  int64(m) * int64(k) * int64(n),
			Cores: runtime.GOMAXPROCS(0),
		}
		var err error
		tensor.SetParallelism(1)
		if e.SerialNsOp, _, err = measure(iters, mul); err != nil {
			return nil, err
		}
		tensor.SetParallelism(0)
		if e.ParallelNsOp, _, err = measure(iters, mul); err != nil {
			return nil, err
		}
		e.Speedup = ratio(e.SerialNsOp, e.ParallelNsOp)
		out = append(out, e)
	}
	return out, nil
}

// runCompressSession trains the shared rt bench workload over real TCP
// (binary codec) with the given gradient codec negotiated on both sides
// and the kernel fan-out fixed to par, and meters the report path
// through the coordinator-side registry.
func runCompressSession(comp transport.Compression, par int, quick bool, ref *rt.Result) (compressSessionEntry, error) {
	cfg := rtBenchConfig(quick)
	cfg.Compress = comp
	reg := obs.NewRegistry()
	cfg.Metrics = reg

	kernel := "parallel"
	if par == 1 {
		kernel = "serial"
	}
	e := compressSessionEntry{
		Compression: comp.String(), Kernel: kernel,
		Workers: cfg.Workers, Iterations: cfg.Iterations,
	}
	tensor.SetParallelism(par)
	defer tensor.SetParallelism(0)

	l, err := transport.ListenCodec("127.0.0.1:0", transport.CodecBinary)
	if err != nil {
		return e, err
	}
	defer l.Close()

	conns := make([]transport.Conn, cfg.Workers)
	acceptErr := make(chan error, 1)
	go func() {
		for i := range conns {
			c, err := l.Accept()
			if err != nil {
				acceptErr <- err
				return
			}
			conns[i] = c
		}
		acceptErr <- nil
	}()
	workerErrs := make(chan error, cfg.Workers)
	for wid := 0; wid < cfg.Workers; wid++ {
		wid := wid
		go func() {
			c, err := transport.DialCodec(l.Addr(), transport.CodecBinary)
			if err != nil {
				workerErrs <- err
				return
			}
			defer c.Close()
			wCfg := cfg
			wCfg.Metrics = nil // meter on the coordinator side only
			workerErrs <- rt.NewWorker(wid, rtBenchNet(), rtBenchData(), wCfg).Run(c)
		}()
	}
	if err := <-acceptErr; err != nil {
		return e, err
	}

	co, err := rt.NewCoordinator(rtBenchNet(), cfg)
	if err != nil {
		return e, err
	}
	start := time.Now()
	res, err := co.Run(conns)
	if err != nil {
		return e, err
	}
	e.Seconds = time.Since(start).Seconds()
	for i := 0; i < cfg.Workers; i++ {
		if err := <-workerErrs; err != nil {
			return e, err
		}
	}

	var wire int64
	for labels, v := range reg.CounterValues(transport.MetricCompressWireBytes) {
		if strings.Contains(labels, "decode") && strings.Contains(labels, comp.String()) {
			wire += v
		}
	}
	e.ReportBytesPerIter = float64(wire) / float64(cfg.Iterations)
	e.FinalLoss = res.Losses[len(res.Losses)-1]
	e.BitIdentical = minidnn.ParamsEqual(ref.Params, res.Params)
	if comp == transport.CompressExact && !e.BitIdentical {
		return e, fmt.Errorf("exact compression session diverged from the sequential reference")
	}
	return e, nil
}

// runWireSession trains the shared rt bench workload end to end over
// real TCP under the named codec and reports tokens/sec.
func runWireSession(codec string, quick bool, ref *rt.Result) (wireSessionEntry, error) {
	cfg := rtBenchConfig(quick)
	e := wireSessionEntry{Codec: codec, Workers: cfg.Workers, Iterations: cfg.Iterations}

	l, err := transport.ListenCodec("127.0.0.1:0", codec)
	if err != nil {
		return e, err
	}
	defer l.Close()

	conns := make([]transport.Conn, cfg.Workers)
	acceptErr := make(chan error, 1)
	go func() {
		for i := range conns {
			c, err := l.Accept()
			if err != nil {
				acceptErr <- err
				return
			}
			conns[i] = c
		}
		acceptErr <- nil
	}()
	workerErrs := make(chan error, cfg.Workers)
	for wid := 0; wid < cfg.Workers; wid++ {
		wid := wid
		go func() {
			c, err := transport.DialCodec(l.Addr(), codec)
			if err != nil {
				workerErrs <- err
				return
			}
			defer c.Close()
			workerErrs <- rt.NewWorker(wid, rtBenchNet(), rtBenchData(), cfg).Run(c)
		}()
	}
	if err := <-acceptErr; err != nil {
		return e, err
	}

	co, err := rt.NewCoordinator(rtBenchNet(), cfg)
	if err != nil {
		return e, err
	}
	start := time.Now()
	res, err := co.Run(conns)
	if err != nil {
		return e, err
	}
	e.Seconds = time.Since(start).Seconds()
	for i := 0; i < cfg.Workers; i++ {
		if err := <-workerErrs; err != nil {
			return e, err
		}
	}
	if e.Seconds > 0 {
		e.TokensPerSec = float64(cfg.Iterations*rtTokens(cfg)) / e.Seconds
	}
	e.BitIdentical = minidnn.ParamsEqual(ref.Params, res.Params)
	return e, nil
}

// runWireBench measures the wire fast path (codec microbenchmarks plus
// end-to-end sessions) and writes the report as JSON to path.
func runWireBench(quick bool, path string, out func(string)) error {
	scale, bulkIters := 8, 5
	if quick {
		scale, bulkIters = 64, 10
	}

	report := wireBenchReport{
		Name:      "wire-path",
		Quick:     quick,
		TimeStamp: time.Now().UTC().Format(time.RFC3339),
	}

	msgs := wireMessages(scale)
	for _, codec := range []string{transport.CodecBinary, transport.CodecGob} {
		for _, m := range msgs {
			iters := bulkIters
			if m.Kind == transport.KindAssign || m.Kind == transport.KindRequest {
				iters = 10_000 // control frames are sub-microsecond
			}
			e, err := benchCodecKind(codec, m, iters)
			if err != nil {
				return err
			}
			report.Codec = append(report.Codec, e)
		}
	}

	// Acceptance ratios on the iter-start frame (entry 0 per codec).
	bin, gob := report.Codec[0], report.Codec[len(msgs)]
	report.Summary = wireSummary{
		Kind:             bin.Kind,
		EncodeSpeedup:    ratio(gob.EncodeNsOp, bin.EncodeNsOp),
		DecodeSpeedup:    ratio(gob.DecodeNsOp, bin.DecodeNsOp),
		EncodeAllocRatio: ratio(gob.EncodeBOp, bin.EncodeBOp),
		DecodeAllocRatio: ratio(gob.DecodeBOp, bin.DecodeBOp),
	}

	kernels, err := benchKernels(quick)
	if err != nil {
		return fmt.Errorf("wire bench: kernels: %w", err)
	}
	report.Kernels = kernels
	if n := len(report.Kernels); n > 0 {
		report.Summary.Cores = report.Kernels[n-1].Cores
		report.Summary.KernelSpeedup = report.Kernels[n-1].Speedup
	}

	ref, err := rt.Sequential(rtBenchNet(), rtBenchData(), rtBenchConfig(quick))
	if err != nil {
		return fmt.Errorf("wire bench: sequential reference: %w", err)
	}
	for _, codec := range []string{transport.CodecBinary, transport.CodecGob} {
		e, err := runWireSession(codec, quick, ref)
		if err != nil {
			return fmt.Errorf("wire bench: %s session: %w", codec, err)
		}
		report.Sessions = append(report.Sessions, e)
	}

	// The kernel × codec session matrix: every gradient codec end to end
	// under both kernel modes, with the exact row of each mode as the
	// bytes-per-iter and final-loss baseline.
	codecs := []transport.Compression{
		transport.CompressExact, transport.CompressFP16,
		transport.CompressInt8, transport.CompressTopK,
	}
	for _, par := range []int{1, 0} {
		var exact compressSessionEntry
		for _, comp := range codecs {
			e, err := runCompressSession(comp, par, quick, ref)
			if err != nil {
				return fmt.Errorf("wire bench: %v/%s session: %w", comp, e.Kernel, err)
			}
			if comp == transport.CompressExact {
				exact = e
			}
			e.RatioVsExact = ratio(exact.ReportBytesPerIter, e.ReportBytesPerIter)
			e.LossDeltaVsExact = e.FinalLoss - exact.FinalLoss
			report.Compress = append(report.Compress, e)
			if par == 0 {
				switch comp {
				case transport.CompressFP16:
					report.Summary.FP16ReportRatio = e.RatioVsExact
				case transport.CompressInt8:
					report.Summary.Int8ReportRatio = e.RatioVsExact
				case transport.CompressTopK:
					report.Summary.TopKReportRatio = e.RatioVsExact
				}
			}
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("wire bench: %w", err)
	}
	out(renderWireBench(report, path))
	return nil
}

func ratio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

// renderWireBench formats the report for the terminal.
func renderWireBench(r wireBenchReport, path string) string {
	s := fmt.Sprintf("Wire codec fast path (wrote %s)\n", path)
	s += fmt.Sprintf("%-8s %-12s %12s %14s %14s %14s %14s\n",
		"codec", "kind", "frame-bytes", "enc-ns/op", "enc-B/op", "dec-ns/op", "dec-B/op")
	for _, e := range r.Codec {
		s += fmt.Sprintf("%-8s %-12s %12d %14.0f %14.0f %14.0f %14.0f\n",
			e.Codec, e.Kind, e.FrameBytes, e.EncodeNsOp, e.EncodeBOp, e.DecodeNsOp, e.DecodeBOp)
	}
	s += fmt.Sprintf("iter-start binary vs gob: encode %.1fx faster / %.0fx fewer bytes allocated, decode %.1fx faster / %.0fx fewer\n",
		r.Summary.EncodeSpeedup, r.Summary.EncodeAllocRatio, r.Summary.DecodeSpeedup, r.Summary.DecodeAllocRatio)
	s += fmt.Sprintf("%-8s %8s %8s %12s %s\n", "codec", "workers", "iters", "tokens/s", "bit-identical")
	for _, e := range r.Sessions {
		s += fmt.Sprintf("%-8s %8d %8d %12.1f %v\n",
			e.Codec, e.Workers, e.Iterations, e.TokensPerSec, e.BitIdentical)
	}
	s += fmt.Sprintf("\nCompute kernels (serial vs parallel matmul, %d core(s))\n", r.Summary.Cores)
	s += fmt.Sprintf("%-14s %14s %14s %8s\n", "shape", "serial-ns/op", "parallel-ns/op", "speedup")
	for _, e := range r.Kernels {
		s += fmt.Sprintf("%-14s %14.0f %14.0f %7.2fx\n", e.Shape, e.SerialNsOp, e.ParallelNsOp, e.Speedup)
	}
	if len(r.Compress) > 0 {
		s += "\nGradient codecs × kernel mode (end-to-end TCP sessions; binary codec)\n"
		s += fmt.Sprintf("%-6s %-9s %14s %8s %12s %12s %s\n",
			"codec", "kernel", "rep-B/iter", "ratio", "final-loss", "Δ vs exact", "bit-identical")
		for _, e := range r.Compress {
			s += fmt.Sprintf("%-6s %-9s %14.0f %7.2fx %12.6f %+12.6f %v\n",
				e.Compression, e.Kernel, e.ReportBytesPerIter, e.RatioVsExact,
				e.FinalLoss, e.LossDeltaVsExact, e.BitIdentical)
		}
		s += fmt.Sprintf("report-path cut vs exact: fp16 %.2fx, int8 %.2fx, topk %.2fx\n",
			r.Summary.FP16ReportRatio, r.Summary.Int8ReportRatio, r.Summary.TopKReportRatio)
	}
	return s
}
