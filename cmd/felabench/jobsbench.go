package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"fela/internal/jobs"
	"fela/internal/minidnn"
	"fela/internal/obs"
	"fela/internal/transport"
)

// jobsBenchJob is one job's outcome under one scheduling policy.
type jobsBenchJob struct {
	Name             string  `json:"name"`
	Iterations       int     `json:"iterations"`
	TotalBatch       int     `json:"total_batch"`
	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
	RuntimeSeconds   float64 `json:"runtime_seconds"`
	// WorkerIters is the job's consumed worker-iterations (live workers
	// summed over its barriers) — the currency of the fairness index.
	WorkerIters  int  `json:"worker_iters"`
	BitIdentical bool `json:"bit_identical"`
}

// jobsBenchEntry is one policy's run of the contention workload.
type jobsBenchEntry struct {
	Policy          string  `json:"policy"`
	PoolWorkers     int     `json:"pool_workers"`
	MakespanSeconds float64 `json:"makespan_seconds"`
	// AggTokensPerSec is total tokens trained across jobs over makespan.
	AggTokensPerSec float64 `json:"agg_tokens_per_sec"`
	// Fairness is the Jain index over per-job worker-iterations:
	// (Σx)²/(n·Σx²), 1.0 = perfectly even, 1/n = maximally skewed.
	Fairness float64        `json:"fairness_index"`
	Jobs     []jobsBenchJob `json:"jobs"`
	// Obs embeds the pool's telemetry snapshot: the rt latency quantiles
	// aggregated across jobs plus the manager's own counters.
	Obs         *rtObsSummary               `json:"obs,omitempty"`
	PoolMetrics map[string]map[string]int64 `json:"pool_metrics,omitempty"`
}

// jobsBenchReport is the machine-readable BENCH_jobs.json payload.
type jobsBenchReport struct {
	Name      string           `json:"name"`
	Quick     bool             `json:"quick"`
	TimeStamp string           `json:"timestamp"`
	Entries   []jobsBenchEntry `json:"entries"`
}

// jobsTokenDelay is the simulated per-token compute cost every pool
// worker injects (rt.Config.TokenDelay). The MLP presets train in
// microseconds, so without it allocation policy cannot move the
// needle; with it, each token costs real wall-clock that overlaps
// across workers, and worker counts parallelize the way they would
// with a heavy model.
const jobsTokenDelay = 500 * time.Microsecond

// jobsWorkload is the skewed two-job contention workload: a large job
// with many tokens per iteration (compute-dominated, scales with
// workers) and a small single-token-per-iteration job that physically
// cannot use more than one worker. Fair-share parks a useless second
// worker on the small job; throughput-max observes its zero marginal
// rate and tilts the pool toward the large job.
func jobsWorkload(quick bool) []transport.JobSpec {
	itersLarge, itersSmall := 80, 400
	if quick {
		itersLarge, itersSmall = 20, 100
	}
	return []transport.JobSpec{
		{Name: "large", Iterations: itersLarge, TotalBatch: 256, TokenBatch: 8, Seed: 0},
		{Name: "small", Iterations: itersSmall, TotalBatch: 8, TokenBatch: 8, Seed: 9, Priority: 1},
	}
}

func jainIndex(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += float64(x)
		sq += float64(x) * float64(x)
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// runJobsPool runs the workload on a fresh pool of nWorkers in-process
// pool workers under pol. sequential=true submits the jobs one at a
// time (the no-sharing baseline); otherwise they contend.
func runJobsPool(pol jobs.AllocPolicy, nWorkers int, specs []transport.JobSpec, sequential bool) (jobsBenchEntry, error) {
	reg := obs.NewRegistry()
	mgr := jobs.NewManager(jobs.Config{
		Policy:  pol,
		Tick:    20 * time.Millisecond,
		Metrics: reg,
	})
	dial := func() (transport.Conn, error) {
		select {
		case <-mgr.Done():
			return nil, fmt.Errorf("pool stopped")
		default:
		}
		a, b := transport.Pair()
		mgr.Admit(b)
		return a, nil
	}
	workersDone := make(chan error, nWorkers)
	for i := 0; i < nWorkers; i++ {
		go func() {
			_, err := jobs.RunPoolWorker(dial, jobs.PoolWorkerOptions{
				Metrics:    reg,
				TokenDelay: func(int, int) time.Duration { return jobsTokenDelay },
			})
			workersDone <- err
		}()
	}

	entry := jobsBenchEntry{
		Policy:      pol.Name(),
		PoolWorkers: nWorkers,
	}
	if sequential {
		entry.Policy = "sequential"
	}
	fail := func(err error) (jobsBenchEntry, error) {
		mgr.Stop()
		<-mgr.Done()
		return jobsBenchEntry{}, err
	}

	start := time.Now()
	var results []jobs.JobResult
	collect := func(ch <-chan jobs.JobResult) error {
		r := <-ch
		if r.Err != nil {
			return fmt.Errorf("job %s: %w", r.Spec.Name, r.Err)
		}
		results = append(results, r)
		return nil
	}
	if sequential {
		for _, spec := range specs {
			ch, err := mgr.Submit(spec)
			if err != nil {
				return fail(err)
			}
			if err := collect(ch); err != nil {
				return fail(err)
			}
		}
	} else {
		chans := make([]<-chan jobs.JobResult, len(specs))
		for i, spec := range specs {
			ch, err := mgr.Submit(spec)
			if err != nil {
				return fail(err)
			}
			chans[i] = ch
		}
		for _, ch := range chans {
			if err := collect(ch); err != nil {
				return fail(err)
			}
		}
	}
	entry.MakespanSeconds = time.Since(start).Seconds()

	mgr.Stop()
	<-mgr.Done()
	for i := 0; i < nWorkers; i++ {
		if err := <-workersDone; err != nil {
			return jobsBenchEntry{}, fmt.Errorf("pool worker: %w", err)
		}
	}

	totalTokens := 0
	var iters []int
	for _, r := range results {
		ref, err := jobs.Reference(r.Spec)
		if err != nil {
			return jobsBenchEntry{}, err
		}
		entry.Jobs = append(entry.Jobs, jobsBenchJob{
			Name:             r.Spec.Name,
			Iterations:       r.Spec.Iterations,
			TotalBatch:       r.Spec.TotalBatch,
			QueueWaitSeconds: r.QueueWait.Seconds(),
			RuntimeSeconds:   r.Runtime.Seconds(),
			WorkerIters:      r.WorkerIters,
			BitIdentical:     minidnn.ParamsEqual(ref.Params, r.Result.Params),
		})
		totalTokens += r.Spec.Iterations * (r.Spec.TotalBatch / r.Spec.TokenBatch)
		iters = append(iters, r.WorkerIters)
	}
	if entry.MakespanSeconds > 0 {
		entry.AggTokensPerSec = float64(totalTokens) / entry.MakespanSeconds
	}
	entry.Fairness = jainIndex(iters)
	entry.Obs = summarizeObs(reg)
	entry.PoolMetrics = map[string]map[string]int64{}
	for _, name := range []string{
		jobs.MetricCompleted, jobs.MetricLeases, jobs.MetricReleases,
		jobs.MetricReturns, jobs.MetricRebalances,
	} {
		if vals := reg.CounterValues(name); len(vals) > 0 {
			entry.PoolMetrics[name] = vals
		}
	}
	return entry, nil
}

// runJobsBench measures the multi-tenant job manager on the skewed
// two-job contention workload under each allocation policy plus the
// sequential (no-sharing) baseline, and writes BENCH_jobs.json.
func runJobsBench(quick bool, path string, out func(string)) error {
	const nWorkers = 4
	specs := jobsWorkload(quick)

	report := jobsBenchReport{
		Name:      "jobs-manager",
		Quick:     quick,
		TimeStamp: time.Now().UTC().Format(time.RFC3339),
	}

	seq, err := runJobsPool(jobs.FairShare{}, nWorkers, specs, true)
	if err != nil {
		return fmt.Errorf("jobs bench: sequential baseline: %w", err)
	}
	report.Entries = append(report.Entries, seq)

	for _, pol := range []jobs.AllocPolicy{
		jobs.FairShare{}, jobs.Priority{}, &jobs.ThroughputMax{},
	} {
		entry, err := runJobsPool(pol, nWorkers, specs, false)
		if err != nil {
			return fmt.Errorf("jobs bench: %s: %w", pol.Name(), err)
		}
		report.Entries = append(report.Entries, entry)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("jobs bench: %w", err)
	}
	out(renderJobsBench(report, path))
	return nil
}

// renderJobsBench formats the report for the terminal.
func renderJobsBench(r jobsBenchReport, path string) string {
	s := fmt.Sprintf("Multi-tenant job manager, 2-job contention (wrote %s)\n", path)
	s += fmt.Sprintf("%-16s %10s %12s %9s  %-30s %s\n",
		"policy", "makespan", "agg tok/s", "fairness", "per-job runtime", "bit-identical")
	for _, e := range r.Entries {
		runtimes, bits := "", true
		for i, j := range e.Jobs {
			if i > 0 {
				runtimes += "  "
			}
			runtimes += fmt.Sprintf("%s %.2fs", j.Name, j.RuntimeSeconds)
			bits = bits && j.BitIdentical
		}
		s += fmt.Sprintf("%-16s %9.2fs %12.1f %9.3f  %-30s %v\n",
			e.Policy, e.MakespanSeconds, e.AggTokensPerSec, e.Fairness, runtimes, bits)
	}
	return s
}
