package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"fela/internal/durable"
	"fela/internal/minidnn"
	"fela/internal/rt"
)

// durableOverheadEntry measures one checkpoint interval against the
// uncheckpointed baseline on the same simulated-compute workload.
type durableOverheadEntry struct {
	Every       int     `json:"every"`
	Checkpoints int     `json:"checkpoints"`
	Seconds     float64 `json:"seconds"`
	OverheadPct float64 `json:"overhead_pct"`
}

// durableRecoveryEntry times a cold restart for one model size: open
// the plane (ledger replay), load the latest checkpoint frame, and
// install it into a fresh replica.
type durableRecoveryEntry struct {
	Model     string  `json:"model"`
	Params    int     `json:"params"`
	OpenMS    float64 `json:"open_ms"`
	LoadMS    float64 `json:"load_ms"`
	InstallMS float64 `json:"install_ms"`
	TotalMS   float64 `json:"total_ms"`
}

// durableReplayEntry measures raw ledger throughput: fsynced appends on
// the write side, boot-time replay plus the Reduce fold on the read
// side.
type durableReplayEntry struct {
	Entries      int     `json:"entries"`
	AppendPerSec float64 `json:"append_per_sec"`
	ReplayPerSec float64 `json:"replay_per_sec"`
	ReduceMS     float64 `json:"reduce_ms"`
}

// durableBenchReport is the machine-readable BENCH_durable.json payload.
type durableBenchReport struct {
	Name            string                 `json:"name"`
	Quick           bool                   `json:"quick"`
	TimeStamp       string                 `json:"timestamp"`
	BaselineSeconds float64                `json:"baseline_seconds"`
	Overheads       []durableOverheadEntry `json:"overheads"`
	// OverheadPctDefault is the overhead at durable.DefaultEvery — the
	// number the acceptance bar (<= 10%) reads.
	OverheadPctDefault float64                `json:"overhead_pct_default"`
	Recovery           []durableRecoveryEntry `json:"recovery"`
	Replay             durableReplayEntry     `json:"replay"`
}

// durableBenchConfig sizes the overhead workload. The per-token delay
// simulates real compute: without it the arithmetic finishes in
// microseconds and every fsync would look catastrophic, which is not
// the regime the paper's iteration times live in.
func durableBenchConfig(quick bool) rt.Config {
	iters := 60
	if quick {
		iters = 20
	}
	return rt.Config{
		Workers:    2,
		TotalBatch: 64,
		TokenBatch: 8,
		Iterations: iters,
		LR:         0.05,
		Delay:      func(int, int) time.Duration { return 2 * time.Millisecond },
	}
}

// runDurableBench measures the durability plane — checkpoint overhead
// vs interval, recovery time vs model size, ledger replay throughput —
// and writes the report as JSON to path.
func runDurableBench(quick bool, path string, out func(string)) error {
	report := durableBenchReport{
		Name:      "durable-plane",
		Quick:     quick,
		TimeStamp: time.Now().UTC().Format(time.RFC3339),
	}
	cfg := durableBenchConfig(quick)

	// Baseline: the identical session with no durability plane.
	start := time.Now()
	if _, err := rt.Train(rtBenchNet, rtBenchData(), cfg); err != nil {
		return fmt.Errorf("durable bench: baseline: %w", err)
	}
	report.BaselineSeconds = rtSecondsSince(start)

	intervals := []int{1, 2, 5, durable.DefaultEvery, 20}
	if quick {
		intervals = []int{1, durable.DefaultEvery}
	}
	root, err := os.MkdirTemp("", "felabench-durable-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)
	for _, every := range intervals {
		plane, err := durable.Open(filepath.Join(root, fmt.Sprintf("every-%d", every)), durable.Options{})
		if err != nil {
			return err
		}
		c := cfg
		c.CheckpointEvery = every
		ckpts := 0
		c.Checkpoint = func(iter int, params, vel [][]float32, losses []float64) error {
			if err := plane.Store.Save(&durable.Checkpoint{JobID: 0, Iter: iter, Params: params, Vel: vel, Losses: losses}); err != nil {
				return err
			}
			_, err := plane.Ledger.Append(durable.Entry{Op: durable.OpBarrier, JobID: 0, WID: -1, Iter: iter})
			ckpts++
			return err
		}
		start := time.Now()
		if _, err := rt.Train(rtBenchNet, rtBenchData(), c); err != nil {
			plane.Close()
			return fmt.Errorf("durable bench: every=%d: %w", every, err)
		}
		secs := rtSecondsSince(start)
		if err := plane.Close(); err != nil {
			return err
		}
		entry := durableOverheadEntry{Every: every, Checkpoints: ckpts, Seconds: secs}
		if report.BaselineSeconds > 0 {
			entry.OverheadPct = (secs - report.BaselineSeconds) / report.BaselineSeconds * 100
		}
		if every == durable.DefaultEvery {
			report.OverheadPctDefault = entry.OverheadPct
		}
		report.Overheads = append(report.Overheads, entry)
	}

	// Recovery time scales with model size: persist a final checkpoint
	// per preset, then time the cold-restart path (open the plane, load
	// the frame, install it into a fresh replica).
	models := []struct {
		name   string
		hidden int
	}{{"mlp-small", 32}, {"mlp-wide", 128}, {"mlp-xl", 512}}
	for _, m := range models {
		mk := func() *minidnn.Network { return minidnn.NewMLP(42, 16, m.hidden, 4) }
		net := mk()
		nParams := 0
		flat := make([][]float32, 0, len(net.Params()))
		vel := make([][]float32, 0, len(net.Params()))
		for _, t := range net.Params() {
			nParams += t.Len()
			p := make([]float32, t.Len())
			copy(p, t.Data)
			flat = append(flat, p)
			vel = append(vel, make([]float32, t.Len()))
		}
		dir := filepath.Join(root, "recover-"+m.name)
		plane, err := durable.Open(dir, durable.Options{})
		if err != nil {
			return err
		}
		err = plane.Store.Save(&durable.Checkpoint{JobID: 1, Iter: 99, Params: flat, Vel: vel, Losses: make([]float64, 100)})
		if cerr := plane.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("durable bench: persist %s: %w", m.name, err)
		}

		t0 := time.Now()
		plane, err = durable.Open(dir, durable.Options{})
		if err != nil {
			return err
		}
		t1 := time.Now()
		ckpt, err := plane.Store.Load(1)
		if err != nil || ckpt == nil {
			plane.Close()
			return fmt.Errorf("durable bench: reload %s: %v", m.name, err)
		}
		t2 := time.Now()
		fresh := mk()
		if err := rt.InstallFlat(fresh.Params(), ckpt.Params); err != nil {
			plane.Close()
			return err
		}
		t3 := time.Now()
		if err := plane.Close(); err != nil {
			return err
		}
		report.Recovery = append(report.Recovery, durableRecoveryEntry{
			Model: m.name, Params: nParams,
			OpenMS:    t1.Sub(t0).Seconds() * 1e3,
			LoadMS:    t2.Sub(t1).Seconds() * 1e3,
			InstallMS: t3.Sub(t2).Seconds() * 1e3,
			TotalMS:   t3.Sub(t0).Seconds() * 1e3,
		})
	}

	// Ledger throughput: fsynced appends, then boot-time replay + fold.
	nEntries := 5000
	if quick {
		nEntries = 1000
	}
	ldir := filepath.Join(root, "replay")
	plane, err := durable.Open(ldir, durable.Options{})
	if err != nil {
		return err
	}
	ops := []durable.Op{durable.OpSubmit, durable.OpJobStart, durable.OpLeaseGrant, durable.OpBarrier, durable.OpJobDone}
	start = time.Now()
	for i := 0; i < nEntries; i++ {
		e := durable.Entry{Op: ops[i%len(ops)], JobID: i/len(ops) + 1, WID: -1, Iter: i % 40}
		if _, err := plane.Ledger.Append(e); err != nil {
			plane.Close()
			return fmt.Errorf("durable bench: append %d: %w", i, err)
		}
	}
	appendSecs := rtSecondsSince(start)
	if err := plane.Close(); err != nil {
		return err
	}
	start = time.Now()
	plane, err = durable.Open(ldir, durable.Options{})
	if err != nil {
		return err
	}
	replaySecs := rtSecondsSince(start)
	start = time.Now()
	durable.Reduce(plane.Entries)
	reduceSecs := rtSecondsSince(start)
	got := len(plane.Entries)
	if err := plane.Close(); err != nil {
		return err
	}
	if got != nEntries {
		return fmt.Errorf("durable bench: replayed %d entries, appended %d", got, nEntries)
	}
	report.Replay = durableReplayEntry{
		Entries:      nEntries,
		AppendPerSec: float64(nEntries) / appendSecs,
		ReplayPerSec: float64(nEntries) / replaySecs,
		ReduceMS:     reduceSecs * 1e3,
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("durable bench: %w", err)
	}
	out(renderDurableBench(report, path))
	return nil
}

// renderDurableBench formats the report for the terminal.
func renderDurableBench(r durableBenchReport, path string) string {
	s := fmt.Sprintf("Durability plane (wrote %s)\n", path)
	s += fmt.Sprintf("checkpoint overhead vs interval (baseline %.2fs uncheckpointed):\n", r.BaselineSeconds)
	s += fmt.Sprintf("  %-8s %12s %10s %12s\n", "every", "checkpoints", "seconds", "overhead")
	for _, e := range r.Overheads {
		s += fmt.Sprintf("  %-8d %12d %10.2f %11.1f%%\n", e.Every, e.Checkpoints, e.Seconds, e.OverheadPct)
	}
	s += "cold-restart recovery vs model size:\n"
	s += fmt.Sprintf("  %-10s %10s %9s %9s %10s %9s\n", "model", "params", "open", "load", "install", "total")
	for _, e := range r.Recovery {
		s += fmt.Sprintf("  %-10s %10d %7.2fms %7.2fms %8.2fms %7.2fms\n",
			e.Model, e.Params, e.OpenMS, e.LoadMS, e.InstallMS, e.TotalMS)
	}
	s += fmt.Sprintf("ledger: %d entries, %.0f appends/s (fsynced), %.0f replayed/s, reduce %.2fms\n",
		r.Replay.Entries, r.Replay.AppendPerSec, r.Replay.ReplayPerSec, r.Replay.ReduceMS)
	return s
}
