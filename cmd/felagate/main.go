// Command felagate is Fela's serving gateway: an HTTP/JSON front end
// over N jobs.Manager shards, each shard a multi-tenant elastic pool of
// felaworker -pool processes. Clients submit training jobs with curl
// instead of the binary wire protocol; the gateway meters them with
// per-tenant token buckets and quotas, sheds overload at the edge with
// 429 + Retry-After, and routes admitted jobs across shards by
// consistent-hash tenant affinity with a least-loaded spill.
//
//	felagate -addr 127.0.0.1:8080 -pool-addr 127.0.0.1:7070 -shards 2
//	felaworker -pool -addr 127.0.0.1:7070    (… a few of these)
//	curl -XPOST localhost:8080/v1/jobs -H 'X-Fela-Tenant: alice' \
//	     -d '{"name": "mine", "iterations": 20}'
//
// Pool workers register on -pool-addr and are dealt round-robin across
// the shards. SIGINT/SIGTERM drains gracefully: submissions shed with
// 503 while in-flight jobs run to completion (bounded by
// -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fela/internal/gate"
	"fela/internal/jobs"
	"fela/internal/obs"
	"fela/internal/transport"
)

// gateOpts bundles every flag so tests can drive run directly.
type gateOpts struct {
	addr     string
	poolAddr string
	codec    string
	shards   int

	alloc     string
	admission string

	tenantRate  float64
	tenantBurst int
	tenantQuota int
	queueBound  int

	statusAddr   string
	drainTimeout time.Duration
}

func main() {
	var o gateOpts
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8080", "HTTP address to serve the gateway API on")
	flag.StringVar(&o.poolAddr, "pool-addr", "127.0.0.1:7070", "TCP address pool workers register on")
	flag.StringVar(&o.codec, "codec", transport.DefaultCodec,
		"wire codec for pool workers (binary or gob); must match felaworker -codec")
	flag.IntVar(&o.shards, "shards", 2, "number of job-manager shards behind the gateway")
	flag.StringVar(&o.alloc, "alloc", "fair-share",
		"per-shard worker allocation policy (fair-share, priority, throughput-max, oasis)")
	flag.StringVar(&o.admission, "admission", "",
		"per-shard online admission policy (none, oasis; empty = admit everything)")
	flag.Float64Var(&o.tenantRate, "tenant-rate", 0,
		"per-tenant submit budget in submissions/sec (0 = unlimited)")
	flag.IntVar(&o.tenantBurst, "tenant-burst", 0,
		"per-tenant submit burst (0 = ceil of -tenant-rate)")
	flag.IntVar(&o.tenantQuota, "tenant-quota", 0,
		"per-tenant cap on in-flight jobs (0 = unlimited)")
	flag.IntVar(&o.queueBound, "queue-bound", 0,
		"per-shard cap on in-flight jobs before shedding 429 (0 = unbounded)")
	flag.StringVar(&o.statusAddr, "status-addr", "",
		"serve telemetry (/metrics, /statusz, /trace, /debug/pprof) on this address (empty = off)")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second,
		"on SIGINT/SIGTERM, how long to wait for in-flight jobs before exiting anyway")
	flag.Parse()

	// SIGQUIT dumps the flight-recorder ring as JSONL to stderr and
	// keeps running — the field-debugging hook every binary carries.
	obs.FlightDumpOnSIGQUIT("felagate")

	if err := run(o, nil); err != nil {
		fmt.Fprintln(os.Stderr, "felagate:", err)
		os.Exit(1)
	}
}

// run serves the gateway until a signal arrives on sig, then drains and
// returns nil for a clean exit. A nil sig installs the real
// SIGINT/SIGTERM handler; tests inject their own channel.
func run(o gateOpts, sig <-chan os.Signal) error {
	if o.shards < 1 {
		return fmt.Errorf("-shards must be at least 1")
	}
	if !transport.ValidCodec(o.codec) {
		return fmt.Errorf("unknown codec %q (want %s or %s)", o.codec, transport.CodecBinary, transport.CodecGob)
	}
	pol, ok := jobs.PolicyByName(o.alloc)
	if !ok {
		return fmt.Errorf("unknown allocation policy %q (want fair-share, priority, throughput-max or oasis)", o.alloc)
	}
	var adm jobs.AdmissionPolicy
	if o.admission != "" {
		if adm, ok = jobs.AdmissionByName(o.admission); !ok {
			return fmt.Errorf("unknown admission policy %q (want none or oasis)", o.admission)
		}
	}

	reg := obs.NewRegistry()
	spans := obs.NewTracer("felagate")

	mgrs := make([]*jobs.Manager, o.shards)
	backends := make([]gate.Shard, o.shards)
	for i := range mgrs {
		mgrs[i] = jobs.NewManager(jobs.Config{Policy: pol, Admission: adm, Metrics: reg, Spans: spans})
		backends[i] = mgrs[i]
	}
	// stopManagers drains the shards, bounded: a manager's Done only
	// closes once every job it holds has finished, so a queued job with
	// no pool workers left would otherwise hang shutdown forever.
	stopManagers := func(timeout time.Duration) {
		for _, m := range mgrs {
			m.Stop()
		}
		drained := make(chan struct{})
		go func() {
			for _, m := range mgrs {
				<-m.Done()
			}
			close(drained)
		}()
		select {
		case <-drained:
		case <-time.After(timeout):
			fmt.Println("felagate: shard drain deadline passed, exiting anyway")
		}
	}

	// Pool workers register over TCP and are dealt round-robin across
	// the shards; each shard rebalances its own slice of the pool.
	poolL, err := transport.ListenCodec(o.poolAddr, o.codec)
	if err != nil {
		stopManagers(5 * time.Second)
		return err
	}
	defer poolL.Close()
	go func() {
		for i := 0; ; i++ {
			c, err := poolL.Accept()
			if err != nil {
				return
			}
			mgrs[i%len(mgrs)].Admit(c)
		}
	}()

	gw, err := gate.New(gate.Config{
		Shards:      backends,
		TenantRate:  o.tenantRate,
		TenantBurst: o.tenantBurst,
		TenantQuota: o.tenantQuota,
		QueueBound:  o.queueBound,
		Metrics:     reg,
		Spans:       spans,
	})
	if err != nil {
		stopManagers(5 * time.Second)
		return err
	}

	if o.statusAddr != "" {
		bound, stop, err := obs.Serve(o.statusAddr, obs.NewHandler(obs.HandlerOptions{
			Registry: reg,
			Status:   gw.StatusAny,
			Health: func() error {
				if gw.Status().Draining {
					return fmt.Errorf("gateway is draining")
				}
				return nil
			},
			Tracers: []*obs.Tracer{spans},
		}))
		if err != nil {
			stopManagers(5 * time.Second)
			return err
		}
		defer stop()
		fmt.Printf("felagate: telemetry on http://%s (/metrics /statusz /trace /debug/pprof)\n", bound)
	}

	httpL, err := net.Listen("tcp", o.addr)
	if err != nil {
		stopManagers(5 * time.Second)
		return err
	}
	srv := &http.Server{Handler: gw}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(httpL) }()
	fmt.Printf("felagate: serving on http://%s (%d shards, pool on %s, policy %s)\n",
		httpL.Addr(), o.shards, poolL.Addr(), pol.Name())

	if sig == nil {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
		defer signal.Stop(ch)
		sig = ch
	}
	select {
	case err := <-serveErr:
		stopManagers(5 * time.Second)
		return fmt.Errorf("http server: %w", err)
	case s := <-sig:
		fmt.Printf("felagate: %v received, draining (timeout %s)\n", s, o.drainTimeout)
	}

	// Drain: submissions shed with 503 while everything already admitted
	// runs to completion, bounded by the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := gw.Drain(ctx); err != nil {
		fmt.Printf("felagate: drain deadline passed with %d jobs still in flight\n", gw.Inflight())
	}
	gw.Close() // end any live SSE streams so Shutdown can finish

	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Printf("felagate: http shutdown: %v\n", err)
	}
	poolL.Close()
	stopManagers(o.drainTimeout)

	st := gw.Status()
	fmt.Printf("felagate: drained (%d submitted, %d settled, %d ok, %d shed at edge)\n",
		st.Submitted, st.Settled, st.JobsOK,
		st.ShedRateLimited+st.ShedQuotaExceeded+st.ShedQueueFull+st.ShedDraining)
	return nil
}
