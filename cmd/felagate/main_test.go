package main

import (
	"encoding/json"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"fela/internal/jobs"
	"fela/internal/transport"
)

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startPoolWorkers runs n in-process pool workers against the gateway's
// worker port, exactly as felaworker -pool processes would.
func startPoolWorkers(t *testing.T, addr string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		go func() {
			dial := func() (transport.Conn, error) {
				return transport.DialRetryCodec(addr, 50, 20*time.Millisecond, transport.DefaultCodec)
			}
			_, _ = jobs.RunPoolWorker(dial, jobs.PoolWorkerOptions{})
		}()
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway never became healthy: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRunServesAndDrains boots the full binary path — two manager
// shards, real pool workers, real HTTP — submits a job end to end, then
// delivers a SIGTERM and requires a clean (nil) exit.
func TestRunServesAndDrains(t *testing.T) {
	o := gateOpts{
		addr:         freeAddr(t),
		poolAddr:     freeAddr(t),
		codec:        transport.DefaultCodec,
		shards:       2,
		alloc:        "fair-share",
		drainTimeout: 20 * time.Second,
	}
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- run(o, sig) }()
	base := "http://" + o.addr
	waitHealthy(t, base)
	startPoolWorkers(t, o.poolAddr, 2)

	body := `{"name": "gate-e2e", "iterations": 3, "total_batch": 16, "token_batch": 8}`
	req, _ := http.NewRequest("POST", base+"/v1/jobs", strings.NewReader(body))
	req.Header.Set("X-Fela-Tenant", "e2e")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var ack struct {
		Job string `json:"job"`
		ID  string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatalf("submit decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit code %d", resp.StatusCode)
	}
	id := ack.Job
	if id == "" {
		id = ack.ID
	}

	// Poll until the job trains to completion through the real stack.
	deadline := time.Now().Add(30 * time.Second)
	for {
		req, _ := http.NewRequest("GET", base+"/v1/jobs/"+id, nil)
		req.Header.Set("X-Fela-Tenant", "e2e")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		var jv struct {
			State string `json:"state"`
		}
		json.NewDecoder(resp.Body).Decode(&jv)
		resp.Body.Close()
		if jv.State == "done" {
			break
		}
		if jv.State == "failed" || jv.State == "rejected" {
			t.Fatalf("job ended %q", jv.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", jv.State)
		}
		time.Sleep(25 * time.Millisecond)
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want clean exit", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}
}

// TestRunDrainShedsSubmissions checks the drain contract: after the
// signal, new submissions get 503 while the server finishes shutting
// down.
func TestRunDrainShedsSubmissions(t *testing.T) {
	o := gateOpts{
		addr:         freeAddr(t),
		poolAddr:     freeAddr(t),
		codec:        transport.DefaultCodec,
		shards:       1,
		alloc:        "fair-share",
		drainTimeout: 10 * time.Second,
	}
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- run(o, sig) }()
	base := "http://" + o.addr
	waitHealthy(t, base)

	sig <- syscall.SIGTERM
	// With nothing in flight the drain races us to shutdown; a refused
	// connection is as correct as a 503.
	for {
		resp, err := http.Post(base+"/v1/jobs", "application/json",
			strings.NewReader(`{"iterations": 1}`))
		if err != nil {
			break // listener already down
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code != http.StatusServiceUnavailable {
			t.Fatalf("submit during drain: code %d", code)
		}
		break
	}
	if err := <-done; err != nil {
		t.Fatalf("run returned %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(gateOpts{shards: 0}, nil); err == nil {
		t.Fatal("shards=0 accepted")
	}
	if err := run(gateOpts{shards: 1, codec: "nope"}, nil); err == nil {
		t.Fatal("bad codec accepted")
	}
	if err := run(gateOpts{shards: 1, codec: transport.DefaultCodec, alloc: "nope"}, nil); err == nil {
		t.Fatal("bad alloc accepted")
	}
	o := gateOpts{shards: 1, codec: transport.DefaultCodec, alloc: "fair-share", admission: "nope"}
	if err := run(o, nil); err == nil {
		t.Fatal("bad admission accepted")
	}
}

// TestRunDrainDeadlineWithStuckJob pins the shutdown bound: a job
// queued on a shard with no pool workers can never finish, so both the
// gateway drain and the shard drain must hit their deadlines and the
// process must still exit cleanly instead of hanging on the manager.
func TestRunDrainDeadlineWithStuckJob(t *testing.T) {
	o := gateOpts{
		addr:         freeAddr(t),
		poolAddr:     freeAddr(t),
		codec:        transport.DefaultCodec,
		shards:       1,
		alloc:        "fair-share",
		drainTimeout: 500 * time.Millisecond,
	}
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- run(o, sig) }()
	base := "http://" + o.addr
	waitHealthy(t, base)

	req, _ := http.NewRequest("POST", base+"/v1/jobs", strings.NewReader(`{"iterations": 5}`))
	req.Header.Set("X-Fela-Tenant", "stuck")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit code %d, want 202 (job should queue forever)", resp.StatusCode)
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want clean exit", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run hung on the undrainable shard")
	}
}
