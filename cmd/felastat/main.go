// Command felastat renders one cluster view from the telemetry
// endpoints of a running Fela deployment. Point it at the status
// addresses of a gateway, its shards, standalone job managers,
// coordinators, or workers, and it scrapes /statusz + /metrics +
// /debug/flight from each and merges them into a single report:
// per-tenant SLO burn rate, per-shard queue depth and admission
// ledger, a worker straggler heatmap, and the flight-recorder tail.
//
//	felastat -targets 127.0.0.1:9090                 # one shot, human-readable
//	felastat -targets gw:9090,w1:9191 -watch 2s      # live top-style refresh
//	felastat -targets gw:9090 -json                  # machine-readable, for CI
//
// Every /metrics body is also run through the OpenMetrics lint; lint
// findings surface per target so a malformed exposition (a broken
// exemplar, a counter named like a gauge) is caught by the same tool
// that reads it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"fela/internal/gate"
	"fela/internal/jobs"
	"fela/internal/obs"
	"fela/internal/rt"
	"fela/internal/transport"
)

// statOpts bundles every flag so tests can drive run directly.
type statOpts struct {
	targets string
	watch   time.Duration
	jsonOut bool
	flightN int
	timeout time.Duration
}

func main() {
	var o statOpts
	flag.StringVar(&o.targets, "targets", "",
		"comma-separated status addresses (host:port) to scrape")
	flag.DurationVar(&o.watch, "watch", 0,
		"refresh interval for a live top-style view (0 = scrape once and exit)")
	flag.BoolVar(&o.jsonOut, "json", false, "emit the cluster view as JSON")
	flag.IntVar(&o.flightN, "flight", 16,
		"flight-recorder events to keep per target (0 = skip the flight tail)")
	flag.DurationVar(&o.timeout, "timeout", 3*time.Second, "per-request scrape timeout")
	flag.Parse()

	obs.FlightDumpOnSIGQUIT("felastat")

	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "felastat:", err)
		os.Exit(1)
	}
}

func run(o statOpts, w io.Writer) error {
	targets := splitTargets(o.targets)
	if len(targets) == 0 {
		return fmt.Errorf("no targets: pass -targets host:port[,host:port...]")
	}
	client := &http.Client{Timeout: o.timeout}
	for {
		view := collect(client, targets, o.flightN)
		if o.jsonOut {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(view); err != nil {
				return err
			}
		} else {
			if o.watch > 0 {
				fmt.Fprint(w, "\x1b[2J\x1b[H") // clear screen, home cursor
			}
			render(w, view)
		}
		if o.watch <= 0 {
			return nil
		}
		time.Sleep(o.watch)
	}
}

func splitTargets(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// ---------------------------------------------------------------------
// cluster view

// TargetView is one scrape endpoint's identity and health.
type TargetView struct {
	Target  string `json:"target"`
	Role    string `json:"role"`
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`
	// LintErrors are OpenMetrics conformance findings in the target's
	// /metrics body.
	LintErrors []string `json:"lint_errors,omitempty"`
}

// TenantBurn is one tenant's SLO accounting at the gateway edge.
type TenantBurn struct {
	Target   string  `json:"target"`
	Tenant   string  `json:"tenant"`
	Inflight int     `json:"inflight"`
	Admitted int64   `json:"admitted"`
	Shed     int64   `json:"shed"`
	Burn5m   float64 `json:"burn_5m"`
	Burn1h   float64 `json:"burn_1h"`
}

// ShardStat is one scheduler shard's queue depth and admission ledger.
// Shard is the gateway's shard index, or -1 for a standalone manager
// scraped directly.
type ShardStat struct {
	Target        string  `json:"target"`
	Shard         int     `json:"shard"`
	Workers       int     `json:"workers"`
	Idle          int     `json:"idle"`
	Running       int     `json:"running"`
	Queued        int     `json:"queued"`
	Inflight      int64   `json:"inflight"`
	Completed     int     `json:"completed"`
	Admission     string  `json:"admission,omitempty"`
	Rejected      int     `json:"rejected"`
	BacklogTokens int     `json:"backlog_tokens"`
	Burn5m        float64 `json:"burn_5m"`
	Burn1h        float64 `json:"burn_1h"`
}

// WorkerHeat is one worker's straggler score with its heatmap cell.
type WorkerHeat struct {
	Target string  `json:"target"`
	Worker int     `json:"worker"`
	Score  float64 `json:"straggler_score"`
	Heat   string  `json:"heat"`
}

// CompressStat is one codec's cumulative gradient compression ratio at
// a target (raw dense bytes / encoded wire bytes; stays absent until a
// negotiated-lossy report crosses the wire).
type CompressStat struct {
	Target      string  `json:"target"`
	Compression string  `json:"compression"`
	Ratio       float64 `json:"ratio"`
}

// KernelUtil is one worker process's parallel compute-kernel
// utilization: busy / (wall × fan-out) over its last token.
type KernelUtil struct {
	Target string  `json:"target"`
	Worker int     `json:"worker"`
	Util   float64 `json:"kernel_utilization"`
}

// JobRow is one job on a scraped manager, including its durability
// posture: the last committed checkpoint iteration and how stale that
// checkpoint is (the work a crash right now would redo).
type JobRow struct {
	Target     string `json:"target"`
	Job        int    `json:"job"`
	Name       string `json:"name"`
	State      string `json:"state"`
	Workers    int    `json:"workers"`
	Iter       int    `json:"iter"`
	Iterations int    `json:"iterations"`
	// CkptIter is -1 until the first checkpoint commits (or when the
	// manager runs without a durability plane).
	CkptIter       int     `json:"ckpt_iter"`
	CkptAgeSeconds float64 `json:"ckpt_age_seconds,omitempty"`
}

// ClusterView is the merged scrape — what -json emits.
type ClusterView struct {
	Targets  []TargetView      `json:"targets"`
	Tenants  []TenantBurn      `json:"tenants"`
	Shards   []ShardStat       `json:"shards"`
	Jobs     []JobRow          `json:"jobs,omitempty"`
	Workers  []WorkerHeat      `json:"workers"`
	Compress []CompressStat    `json:"compress,omitempty"`
	Kernels  []KernelUtil      `json:"kernels,omitempty"`
	Flight   []obs.FlightEvent `json:"flight,omitempty"`
}

// heatRunes maps a straggler score in [0,1] to a heatmap cell: the
// fastest worker is blank, the most lagged is a full block.
var heatRunes = []rune{' ', '░', '▒', '▓', '█'}

func heat(score float64) string {
	i := int(score * float64(len(heatRunes)))
	if i < 0 {
		i = 0
	}
	if i >= len(heatRunes) {
		i = len(heatRunes) - 1
	}
	return string(heatRunes[i])
}

// collect scrapes every target and merges the bodies into one view.
func collect(client *http.Client, targets []string, flightN int) *ClusterView {
	view := &ClusterView{}
	// scores dedups worker heat by (target, worker id); the /metrics
	// gauge and a coordinator's /statusz map may both report a worker.
	scores := map[string]map[int]float64{}
	for _, target := range targets {
		tv := TargetView{Target: target, Role: "unknown"}
		if role, err := scrapeStatus(client, target, view, scores); err != nil {
			tv.Error = err.Error()
		} else {
			tv.Role = role
		}
		tv.Healthy = scrapeHealth(client, target)
		ms := scrapeMetrics(client, target)
		tv.LintErrors = ms.lint
		for wid, score := range ms.stragglers {
			if scores[target] == nil {
				scores[target] = map[int]float64{}
			}
			scores[target][wid] = score
		}
		view.Compress = append(view.Compress, ms.compress...)
		view.Kernels = append(view.Kernels, ms.kernels...)
		if flightN > 0 {
			view.Flight = append(view.Flight, scrapeFlight(client, target, flightN)...)
		}
		view.Targets = append(view.Targets, tv)
	}
	for target, byWID := range scores {
		for wid, score := range byWID {
			view.Workers = append(view.Workers,
				WorkerHeat{Target: target, Worker: wid, Score: score, Heat: heat(score)})
		}
	}
	sort.Slice(view.Workers, func(i, j int) bool {
		if view.Workers[i].Target != view.Workers[j].Target {
			return view.Workers[i].Target < view.Workers[j].Target
		}
		return view.Workers[i].Worker < view.Workers[j].Worker
	})
	sort.Slice(view.Tenants, func(i, j int) bool { return view.Tenants[i].Tenant < view.Tenants[j].Tenant })
	sort.Slice(view.Compress, func(i, j int) bool {
		if view.Compress[i].Target != view.Compress[j].Target {
			return view.Compress[i].Target < view.Compress[j].Target
		}
		return view.Compress[i].Compression < view.Compress[j].Compression
	})
	sort.Slice(view.Kernels, func(i, j int) bool {
		if view.Kernels[i].Target != view.Kernels[j].Target {
			return view.Kernels[i].Target < view.Kernels[j].Target
		}
		return view.Kernels[i].Worker < view.Kernels[j].Worker
	})
	sort.Slice(view.Jobs, func(i, j int) bool {
		if view.Jobs[i].Target != view.Jobs[j].Target {
			return view.Jobs[i].Target < view.Jobs[j].Target
		}
		return view.Jobs[i].Job < view.Jobs[j].Job
	})
	sort.Slice(view.Flight, func(i, j int) bool { return view.Flight[i].TS < view.Flight[j].TS })
	return view
}

// scrapeStatus reads /statusz, classifies the process by its "role"
// field, and folds the typed snapshot into the view.
func scrapeStatus(client *http.Client, target string, view *ClusterView, scores map[string]map[int]float64) (string, error) {
	raw, err := get(client, target, "/statusz")
	if err != nil {
		return "", err
	}
	var probe struct {
		Role string `json:"role"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return "", fmt.Errorf("statusz: %w", err)
	}
	switch probe.Role {
	case "gateway":
		var st gate.Status
		if err := json.Unmarshal(raw, &st); err != nil {
			return "", fmt.Errorf("gateway statusz: %w", err)
		}
		for _, ts := range st.Tenants {
			view.Tenants = append(view.Tenants, TenantBurn{
				Target: target, Tenant: ts.Tenant, Inflight: ts.Inflight,
				Admitted: ts.Admitted, Shed: ts.Shed,
				Burn5m: ts.SLOBurn5m, Burn1h: ts.SLOBurn1h,
			})
		}
		for _, sv := range st.Shards {
			view.Shards = append(view.Shards, ShardStat{
				Target: target, Shard: sv.Shard,
				Workers: sv.Workers, Idle: sv.Idle, Running: sv.Running,
				Queued: sv.Queued, Inflight: sv.Inflight, Completed: sv.Completed,
				Admission: sv.Admission, Rejected: sv.Rejected,
				BacklogTokens: sv.BacklogTokens,
				Burn5m:        sv.SLOBurn5m, Burn1h: sv.SLOBurn1h,
			})
		}
	case "jobmanager":
		var st jobs.PoolStatus
		if err := json.Unmarshal(raw, &st); err != nil {
			return "", fmt.Errorf("jobmanager statusz: %w", err)
		}
		view.Shards = append(view.Shards, ShardStat{
			Target: target, Shard: -1,
			Workers: st.Workers, Idle: st.Idle, Running: st.Running,
			Queued: st.Queued, Completed: st.Completed,
			Admission: st.Admission, Rejected: st.Rejected,
			BacklogTokens: st.BacklogTokens,
			Burn5m:        st.SLOBurn5m, Burn1h: st.SLOBurn1h,
		})
		for _, js := range st.Jobs {
			view.Jobs = append(view.Jobs, JobRow{
				Target: target, Job: js.ID, Name: js.Name, State: js.State,
				Workers: js.Workers, Iter: js.Iter, Iterations: js.Iterations,
				CkptIter: js.CkptIter, CkptAgeSeconds: js.CkptAgeSeconds,
			})
		}
	case "coordinator":
		var st rt.Status
		if err := json.Unmarshal(raw, &st); err != nil {
			return "", fmt.Errorf("coordinator statusz: %w", err)
		}
		for wid, score := range st.StragglerScore {
			if scores[target] == nil {
				scores[target] = map[int]float64{}
			}
			scores[target][wid] = score
		}
	case "worker":
		// A worker's snapshot carries no cluster-level aggregates; its
		// row in TARGETS (role + health) is the useful part.
	default:
		return "", fmt.Errorf("statusz: unknown role %q", probe.Role)
	}
	return probe.Role, nil
}

func scrapeHealth(client *http.Client, target string) bool {
	resp, err := client.Get("http://" + target + "/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// metricsScrape is everything one /metrics body contributes to the view.
type metricsScrape struct {
	lint       []string
	stragglers map[int]float64
	compress   []CompressStat
	kernels    []KernelUtil
}

// scrapeMetrics lints the exposition and pulls the straggler-score,
// compression-ratio and kernel-utilization gauges out of it.
func scrapeMetrics(client *http.Client, target string) metricsScrape {
	var ms metricsScrape
	raw, err := get(client, target, "/metrics")
	if err != nil {
		return ms
	}
	for _, err := range obs.LintExposition(strings.NewReader(string(raw))) {
		ms.lint = append(ms.lint, err.Error())
	}
	exp, err := obs.ParseExposition(strings.NewReader(string(raw)))
	if err != nil {
		ms.lint = append(ms.lint, err.Error())
		return ms
	}
	for _, s := range exp.Find(rt.MetricStragglerScore) {
		wid, err := strconv.Atoi(s.Labels["worker"])
		if err != nil {
			continue
		}
		if ms.stragglers == nil {
			ms.stragglers = map[int]float64{}
		}
		ms.stragglers[wid] = s.Value
	}
	for _, s := range exp.Find(transport.MetricCompressRatio) {
		// The exact codec's gauge idles at zero unless lossless traffic
		// was explicitly measured; skip silent zero rows either way.
		if s.Value == 0 {
			continue
		}
		ms.compress = append(ms.compress, CompressStat{
			Target: target, Compression: s.Labels["compression"], Ratio: s.Value,
		})
	}
	for _, s := range exp.Find(rt.MetricWorkerKernelUtilization) {
		wid, err := strconv.Atoi(s.Labels["worker"])
		if err != nil {
			continue
		}
		ms.kernels = append(ms.kernels, KernelUtil{Target: target, Worker: wid, Util: s.Value})
	}
	return ms
}

// scrapeFlight reads /debug/flight and keeps the newest n events.
func scrapeFlight(client *http.Client, target string, n int) []obs.FlightEvent {
	raw, err := get(client, target, "/debug/flight")
	if err != nil {
		return nil
	}
	var events []obs.FlightEvent
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if line == "" {
			continue
		}
		var ev obs.FlightEvent
		if json.Unmarshal([]byte(line), &ev) == nil {
			events = append(events, ev)
		}
	}
	if len(events) > n {
		events = events[len(events)-n:]
	}
	return events
}

func get(client *http.Client, target, path string) ([]byte, error) {
	resp, err := client.Get("http://" + target + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// ---------------------------------------------------------------------
// rendering

func render(w io.Writer, view *ClusterView) {
	fmt.Fprintf(w, "felastat · %d target(s)\n\n", len(view.Targets))

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "TARGET\tROLE\tHEALTH\tNOTES")
	for _, t := range view.Targets {
		health := "down"
		if t.Healthy {
			health = "healthy"
		}
		notes := t.Error
		if len(t.LintErrors) > 0 {
			if notes != "" {
				notes += "; "
			}
			notes += fmt.Sprintf("%d lint finding(s)", len(t.LintErrors))
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", t.Target, t.Role, health, notes)
	}
	tw.Flush()

	if len(view.Tenants) > 0 {
		fmt.Fprintln(w, "\nTENANTS  (burn = SLO miss fraction / error budget; >1 overruns the budget)")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "TENANT\tINFLIGHT\tADMITTED\tSHED\tBURN 5m\tBURN 1h")
		for _, t := range view.Tenants {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.2f\t%.2f\n",
				t.Tenant, t.Inflight, t.Admitted, t.Shed, t.Burn5m, t.Burn1h)
		}
		tw.Flush()
	}

	if len(view.Shards) > 0 {
		fmt.Fprintln(w, "\nSHARDS")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "SHARD\tWORKERS\tIDLE\tRUN\tQUEUED\tINFLIGHT\tDONE\tADMISSION\tREJ\tBACKLOG\tBURN 5m")
		for _, s := range view.Shards {
			shard := strconv.Itoa(s.Shard)
			if s.Shard < 0 {
				shard = "-"
			}
			adm := s.Admission
			if adm == "" {
				adm = "admit-all"
			}
			fmt.Fprintf(tw, "%s/%s\t%d\t%d\t%d\t%d\t%d\t%d\t%s\t%d\t%d\t%.2f\n",
				s.Target, shard, s.Workers, s.Idle, s.Running, s.Queued,
				s.Inflight, s.Completed, adm, s.Rejected, s.BacklogTokens, s.Burn5m)
		}
		tw.Flush()
	}

	if len(view.Jobs) > 0 {
		fmt.Fprintln(w, "\nJOBS  (ckpt age = work a crash right now would redo)")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "JOB\tNAME\tSTATE\tWORKERS\tITER\tCKPT\tCKPT AGE")
		for _, j := range view.Jobs {
			ckpt, age := "-", "-"
			if j.CkptIter >= 0 {
				ckpt = strconv.Itoa(j.CkptIter)
				if j.CkptAgeSeconds > 0 {
					age = fmt.Sprintf("%.1fs", j.CkptAgeSeconds)
				}
			}
			fmt.Fprintf(tw, "%d\t%s\t%s\t%d\t%d/%d\t%s\t%s\n",
				j.Job, j.Name, j.State, j.Workers, j.Iter, j.Iterations, ckpt, age)
		}
		tw.Flush()
	}

	if len(view.Workers) > 0 {
		fmt.Fprintln(w, "\nWORKERS  (straggler heat: blank = fastest, █ = most lagged)")
		var bar strings.Builder
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "WORKER\tSCORE\tHEAT")
		for _, wh := range view.Workers {
			bar.WriteString(wh.Heat)
			fmt.Fprintf(tw, "w%d\t%.3f\t[%s]\n", wh.Worker, wh.Score, wh.Heat)
		}
		tw.Flush()
		fmt.Fprintf(w, "  heatmap [%s]\n", bar.String())
	}

	if len(view.Compress) > 0 {
		fmt.Fprintln(w, "\nCOMPRESSION  (cumulative raw/wire ratio of the gradient report path)")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "TARGET\tCODEC\tRATIO")
		for _, c := range view.Compress {
			fmt.Fprintf(tw, "%s\t%s\t%.2fx\n", c.Target, c.Compression, c.Ratio)
		}
		tw.Flush()
	}

	if len(view.Kernels) > 0 {
		fmt.Fprintln(w, "\nKERNELS  (busy / (wall × fan-out) of the parallel compute kernels, last token)")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "WORKER\tUTIL")
		for _, k := range view.Kernels {
			fmt.Fprintf(tw, "%s/w%d\t%.0f%%\n", k.Target, k.Worker, k.Util*100)
		}
		tw.Flush()
	}

	if len(view.Flight) > 0 {
		fmt.Fprintf(w, "\nFLIGHT  (last %d protocol events)\n", len(view.Flight))
		for _, ev := range view.Flight {
			ts := time.Unix(0, ev.TS).Format("15:04:05.000")
			line := fmt.Sprintf("  %s %s/%s", ts, ev.Comp, ev.Event)
			if ev.Job > 0 {
				line += fmt.Sprintf(" job=%d", ev.Job)
			}
			if ev.Worker >= 0 {
				line += fmt.Sprintf(" worker=%d", ev.Worker)
			}
			if ev.Tenant != "" {
				line += " tenant=" + ev.Tenant
			}
			if ev.Trace != "" {
				line += " trace=" + ev.Trace
			}
			if ev.Detail != "" {
				line += " " + ev.Detail
			}
			fmt.Fprintln(w, line)
		}
	}
}
