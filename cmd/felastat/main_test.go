package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fela/internal/gate"
	"fela/internal/jobs"
	"fela/internal/obs"
	"fela/internal/transport"
)

// startCluster boots the felagate wiring in-process: two job-manager
// shards sharing one registry/tracer/flight ring behind a gateway, a
// pool listener dealing workers round-robin, and the obs telemetry
// endpoint felastat scrapes. It returns the gateway's HTTP base URL
// and the telemetry address.
func startCluster(t *testing.T, poolWorkers int) (base, statusAddr string) {
	t.Helper()
	reg := obs.NewRegistry()
	spans := obs.NewTracer("felagate")
	flight := obs.NewFlightRecorder(1 << 10)

	pol, ok := jobs.PolicyByName("fair-share")
	if !ok {
		t.Fatal("fair-share policy missing")
	}
	mgrs := make([]*jobs.Manager, 2)
	backends := make([]gate.Shard, 2)
	for i := range mgrs {
		mgrs[i] = jobs.NewManager(jobs.Config{Policy: pol, Metrics: reg, Spans: spans, Flight: flight})
		backends[i] = mgrs[i]
	}
	t.Cleanup(func() {
		for _, m := range mgrs {
			m.Stop()
		}
		for _, m := range mgrs {
			select {
			case <-m.Done():
			case <-time.After(10 * time.Second):
				t.Error("manager did not drain")
			}
		}
	})

	poolL, err := transport.ListenCodec("127.0.0.1:0", transport.DefaultCodec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { poolL.Close() })
	go func() {
		for i := 0; ; i++ {
			c, err := poolL.Accept()
			if err != nil {
				return
			}
			mgrs[i%len(mgrs)].Admit(c)
		}
	}()
	for i := 0; i < poolWorkers; i++ {
		go func() {
			dial := func() (transport.Conn, error) {
				return transport.DialRetryCodec(poolL.Addr(), 50, 20*time.Millisecond, transport.DefaultCodec)
			}
			_, _ = jobs.RunPoolWorker(dial, jobs.PoolWorkerOptions{})
		}()
	}

	gw, err := gate.New(gate.Config{Shards: backends, Metrics: reg, Spans: spans, Flight: flight})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(gw)
	t.Cleanup(srv.Close)

	statusAddr, stopObs, err := obs.Serve("127.0.0.1:0", obs.NewHandler(obs.HandlerOptions{
		Registry: reg,
		Status:   gw.StatusAny,
		Health:   func() error { return nil },
		Tracers:  []*obs.Tracer{spans},
		Flight:   flight,
	}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stopObs)
	return srv.URL, statusAddr
}

// submitAndWait pushes one job through the gateway and polls it to
// completion.
func submitAndWait(t *testing.T, base, tenant, body string) {
	t.Helper()
	req, _ := http.NewRequest("POST", base+"/v1/jobs", strings.NewReader(body))
	req.Header.Set("X-Fela-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var ack struct {
		Job string `json:"job"`
		ID  string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatalf("submit decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit code %d", resp.StatusCode)
	}
	id := ack.Job
	if id == "" {
		id = ack.ID
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		req, _ := http.NewRequest("GET", base+"/v1/jobs/"+id, nil)
		req.Header.Set("X-Fela-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		var jv struct {
			State string `json:"state"`
		}
		json.NewDecoder(resp.Body).Decode(&jv)
		resp.Body.Close()
		if jv.State == "done" {
			return
		}
		if jv.State == "failed" || jv.State == "rejected" {
			t.Fatalf("job ended %q", jv.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", jv.State)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// waitShardsSettled polls the gateway's /statusz until the shard views
// report every pool worker back idle and all jobs completed — the
// managers publish their snapshots on a throttled tick, so a scrape
// taken right at settlement can trail the final state.
func waitShardsSettled(t *testing.T, statusAddr string, workers, completed int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st gate.Status
		resp, err := http.Get("http://" + statusAddr + "/statusz")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
		}
		if err == nil {
			w, c := 0, 0
			for _, sv := range st.Shards {
				w += sv.Workers
				c += sv.Completed
			}
			if w == workers && c == completed {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard views never settled to %d workers / %d completed: %+v",
				workers, completed, st.Shards)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFelastatLiveTwoShardCluster is the acceptance run: felastat -json
// against a live two-shard gateway reports per-tenant burn rate,
// per-shard queue depth, and a straggler heatmap in one scrape — and
// the scraped /metrics body passes the exposition lint.
func TestFelastatLiveTwoShardCluster(t *testing.T) {
	base, statusAddr := startCluster(t, 4)

	submitAndWait(t, base, "alice",
		`{"name": "stat-a", "iterations": 4, "total_batch": 32, "token_batch": 8}`)
	submitAndWait(t, base, "bob",
		`{"name": "stat-b", "iterations": 4, "total_batch": 32, "token_batch": 8}`)
	waitShardsSettled(t, statusAddr, 4, 2)

	var buf bytes.Buffer
	if err := run(statOpts{
		targets: statusAddr, jsonOut: true, flightN: 64, timeout: 5 * time.Second,
	}, &buf); err != nil {
		t.Fatalf("felastat -json: %v", err)
	}
	var view ClusterView
	if err := json.Unmarshal(buf.Bytes(), &view); err != nil {
		t.Fatalf("decode felastat output: %v\n%s", err, buf.String())
	}

	if len(view.Targets) != 1 {
		t.Fatalf("targets = %d, want 1", len(view.Targets))
	}
	tv := view.Targets[0]
	if tv.Role != "gateway" || !tv.Healthy || tv.Error != "" {
		t.Errorf("target = %+v, want healthy gateway with no error", tv)
	}
	// The exemplar-bearing /metrics body must pass the exposition lint.
	if len(tv.LintErrors) != 0 {
		t.Errorf("exposition lint findings: %v", tv.LintErrors)
	}

	// Per-tenant burn rates for both tenants, in one scrape.
	tenants := map[string]TenantBurn{}
	for _, tb := range view.Tenants {
		tenants[tb.Tenant] = tb
	}
	for _, name := range []string{"alice", "bob"} {
		tb, ok := tenants[name]
		if !ok {
			t.Fatalf("tenant %q missing from view (have %v)", name, view.Tenants)
		}
		if tb.Admitted < 1 {
			t.Errorf("tenant %q admitted = %d, want >= 1", name, tb.Admitted)
		}
		// Both jobs settled inside their (absent) SLO, so the budget is
		// intact: burn must be exactly 0, proving the windows observed
		// the settlements.
		if tb.Burn5m != 0 || tb.Burn1h != 0 {
			t.Errorf("tenant %q burn = %v/%v, want 0/0", name, tb.Burn5m, tb.Burn1h)
		}
	}

	// Both shards report queue depth and their admission ledger.
	if len(view.Shards) != 2 {
		t.Fatalf("shards = %d, want 2 (%+v)", len(view.Shards), view.Shards)
	}
	workers, completed := 0, 0
	for _, s := range view.Shards {
		if s.Shard != 0 && s.Shard != 1 {
			t.Errorf("unexpected shard index %d", s.Shard)
		}
		if s.Queued != 0 {
			t.Errorf("shard %d queued = %d after both jobs settled, want 0", s.Shard, s.Queued)
		}
		workers += s.Workers
		completed += s.Completed
	}
	if workers != 4 {
		t.Errorf("pool workers across shards = %d, want 4", workers)
	}
	if completed != 2 {
		t.Errorf("completed across shards = %d, want 2", completed)
	}

	// The straggler heatmap: every trained worker has a score and a
	// heat cell, and at least one worker is the fastest (blank cell).
	if len(view.Workers) == 0 {
		t.Fatal("no straggler heatmap entries")
	}
	fastest := false
	for _, wh := range view.Workers {
		if wh.Heat == "" {
			t.Errorf("worker %d has no heat cell", wh.Worker)
		}
		if wh.Score == 0 {
			fastest = true
		}
	}
	if !fastest {
		t.Errorf("no worker scored 0 (fastest): %+v", view.Workers)
	}

	// The flight tail carries the gateway protocol history.
	events := map[string]int{}
	for _, ev := range view.Flight {
		events[ev.Comp+"/"+ev.Event]++
	}
	if events["gate/submit"] < 2 || events["gate/settle"] < 2 {
		t.Errorf("flight tail missing gate events: %v", events)
	}
}

// TestFelastatTextRender drives the human-readable one-shot path
// against the same live cluster.
func TestFelastatTextRender(t *testing.T) {
	base, statusAddr := startCluster(t, 2)
	submitAndWait(t, base, "carol",
		`{"name": "stat-c", "iterations": 3, "total_batch": 16, "token_batch": 8}`)

	var buf bytes.Buffer
	if err := run(statOpts{targets: statusAddr, flightN: 8, timeout: 5 * time.Second}, &buf); err != nil {
		t.Fatalf("felastat: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"TARGET", "gateway", "healthy", "TENANTS", "carol", "SHARDS", "WORKERS", "heatmap", "FLIGHT"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestFelastatNoTargets(t *testing.T) {
	if err := run(statOpts{}, &bytes.Buffer{}); err == nil {
		t.Fatal("empty -targets accepted")
	}
}

// TestFelastatJobsCheckpointColumn: a durable job manager's per-job
// checkpoint posture (last committed iteration + its age) surfaces in
// both the JSON view and the rendered JOBS table.
func TestFelastatJobsCheckpointColumn(t *testing.T) {
	st := jobs.PoolStatus{
		Role: "jobmanager", Policy: "fair-share", Workers: 3, Running: 2,
		Jobs: []jobs.JobStatus{
			{ID: 1, Name: "durable-a", State: "running", Workers: 2,
				Iter: 17, Iterations: 40, CkptIter: 15, CkptAgeSeconds: 2.5},
			{ID: 2, Name: "fresh-b", State: "queued", Iter: -1, Iterations: 10, CkptIter: -1},
		},
	}
	statusAddr, stop, err := obs.Serve("127.0.0.1:0", obs.NewHandler(obs.HandlerOptions{
		Status: func() any { return st },
		Health: func() error { return nil },
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	var buf bytes.Buffer
	if err := run(statOpts{targets: statusAddr, jsonOut: true, timeout: 5 * time.Second}, &buf); err != nil {
		t.Fatalf("felastat -json: %v", err)
	}
	var view ClusterView
	if err := json.Unmarshal(buf.Bytes(), &view); err != nil {
		t.Fatalf("decode: %v\n%s", err, buf.String())
	}
	if len(view.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2 (%+v)", len(view.Jobs), view.Jobs)
	}
	if j := view.Jobs[0]; j.Job != 1 || j.CkptIter != 15 || j.CkptAgeSeconds != 2.5 {
		t.Errorf("job 1 row = %+v, want ckpt_iter 15 age 2.5", j)
	}
	if j := view.Jobs[1]; j.CkptIter != -1 || j.CkptAgeSeconds != 0 {
		t.Errorf("job 2 row = %+v, want no checkpoint", j)
	}

	buf.Reset()
	if err := run(statOpts{targets: statusAddr, timeout: 5 * time.Second}, &buf); err != nil {
		t.Fatalf("felastat: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"JOBS", "CKPT AGE", "durable-a", "2.5s", "fresh-b"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}
