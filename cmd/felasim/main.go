// Command felasim runs a single simulated training and prints the
// measured throughput — a scriptable entry point to the simulator.
//
// Usage examples:
//
//	felasim -model VGG19 -batch 256 -iters 100 -system fela
//	felasim -model GoogLeNet -batch 512 -system dp -straggler rr -d 3
//	felasim -model VGG19 -batch 128 -system fela -weights 1,1,8 -subset 1
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fela"
	"fela/internal/baseline"
	"fela/internal/cluster"
	"fela/internal/obs"
)

func main() {
	modelName := flag.String("model", "VGG19", "benchmark model (VGG19, GoogLeNet, AlexNet, LeNet-5)")
	batch := flag.Int("batch", 256, "total batch size per iteration")
	iters := flag.Int("iters", 100, "iterations to run")
	system := flag.String("system", "fela", "system to run: fela, dp, mp, hp")
	weightsFlag := flag.String("weights", "", "comma-separated parallelism weights (empty = tune)")
	subset := flag.Int("subset", 0, "CTD conditional subset size (0 = tuner's choice)")
	stragKind := flag.String("straggler", "none", "straggler scenario: none, rr, prob")
	d := flag.Float64("d", 6, "straggler delay in seconds")
	p := flag.Float64("p", 0.3, "straggler probability (prob scenario)")
	staleness := flag.Int("staleness", 0, "SSP staleness bound for fela (0 = BSP)")
	metricsOut := flag.String("metrics-out", "",
		"fela only: write the Token Server's final telemetry in Prometheus text format to this file (- = stdout)")
	flag.Parse()

	obs.FlightDumpOnSIGQUIT("felasim")

	if err := run(*modelName, *system, *weightsFlag, *stragKind, *metricsOut, *batch, *iters, *subset, *staleness, *d, *p); err != nil {
		fmt.Fprintln(os.Stderr, "felasim:", err)
		os.Exit(1)
	}
}

func run(modelName, system, weightsFlag, stragKind, metricsOut string, batch, iters, subset, staleness int, d, p float64) error {
	m, err := fela.ModelByName(modelName)
	if err != nil {
		return err
	}
	var scen fela.Scenario
	switch stragKind {
	case "none":
		scen = nil
	case "rr":
		scen = fela.RoundRobinStraggler(d, fela.Testbed8().N)
	case "prob":
		scen = fela.ProbabilityStraggler(p, d)
	default:
		return fmt.Errorf("unknown straggler scenario %q", stragKind)
	}

	var res fela.RunResult
	var reg *fela.Registry
	switch system {
	case "fela":
		var weights []int
		if weightsFlag != "" {
			for _, part := range strings.Split(weightsFlag, ",") {
				w, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil {
					return fmt.Errorf("bad weights %q: %w", weightsFlag, err)
				}
				weights = append(weights, w)
			}
		}
		if metricsOut != "" {
			reg = obs.NewRegistry()
		}
		res, err = fela.Simulate(fela.SimConfig{
			Model: m, TotalBatch: batch, Iterations: iters,
			Weights: weights, SubsetSize: subset, Scenario: scen,
			Staleness: staleness, Metrics: reg,
		})
	case "dp", "mp", "hp":
		cfg := baseline.Config{Model: m, TotalBatch: batch, Iterations: iters, Scenario: scen}
		c := cluster.New(fela.Testbed8())
		switch system {
		case "dp":
			res, err = baseline.RunDP(c, cfg)
		case "mp":
			res, err = baseline.RunMP(c, cfg)
		case "hp":
			res, err = baseline.RunHP(c, cfg)
		}
	default:
		return fmt.Errorf("unknown system %q", system)
	}
	if err != nil {
		return err
	}
	fmt.Printf("system=%s model=%s batch=%d iterations=%d\n", res.System, res.Model, res.TotalBatch, res.Iterations)
	fmt.Printf("total time:        %.3f s (simulated)\n", res.TotalTime)
	fmt.Printf("avg iteration:     %.4f s\n", res.AvgIterTime())
	fmt.Printf("avg throughput:    %.1f samples/s (Eq. 3)\n", res.AvgThroughput())
	fmt.Printf("network payload:   %.1f MB/iteration\n", float64(res.BytesSent)/float64(res.Iterations)/1e6)
	if reg != nil {
		w := os.Stdout
		if metricsOut != "-" {
			f, err := os.Create(metricsOut)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
			fmt.Printf("token server metrics: %s\n", metricsOut)
		}
		if err := reg.WritePrometheus(w); err != nil {
			return err
		}
	}
	return nil
}
