package main

import "testing"

func TestRunSystems(t *testing.T) {
	for _, sys := range []string{"fela", "dp", "mp", "hp"} {
		if err := run("GoogLeNet", sys, "1,1,4", "none", "", 128, 2, 1, 0, 6, 0.3); err != nil {
			t.Errorf("%s: %v", sys, err)
		}
	}
}

func TestRunStragglers(t *testing.T) {
	if err := run("GoogLeNet", "dp", "", "rr", "", 128, 2, 0, 0, 1, 0.3); err != nil {
		t.Error(err)
	}
	if err := run("GoogLeNet", "dp", "", "prob", "", 128, 2, 0, 0, 1, 0.2); err != nil {
		t.Error(err)
	}
}

func TestRunSSP(t *testing.T) {
	if err := run("GoogLeNet", "fela", "1,1,4", "none", "", 128, 2, 2, 1, 6, 0.3); err != nil {
		t.Error(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		fn   func() error
	}{
		{"bad model", func() error { return run("nope", "fela", "", "none", "", 128, 2, 0, 0, 6, 0.3) }},
		{"bad system", func() error { return run("VGG19", "xp", "", "none", "", 128, 2, 0, 0, 6, 0.3) }},
		{"bad straggler", func() error { return run("VGG19", "dp", "", "zz", "", 128, 2, 0, 0, 6, 0.3) }},
		{"bad weights", func() error { return run("VGG19", "fela", "1,x", "none", "", 128, 2, 0, 0, 6, 0.3) }},
		{"invalid weights", func() error { return run("VGG19", "fela", "2,2,2", "none", "", 128, 2, 0, 0, 6, 0.3) }},
	}
	for _, tc := range cases {
		if err := tc.fn(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}
