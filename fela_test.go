package fela

import "testing"

func TestPartitionPublicAPI(t *testing.T) {
	subs := Partition(VGG19())
	if len(subs) != 3 {
		t.Fatalf("VGG19 partition = %d sub-models, want 3", len(subs))
	}
	if subs[0].FromLayer != 1 || subs[2].ToLayer != 19 {
		t.Fatalf("partition bounds wrong: %+v", subs)
	}
}

func TestSimulateWithExplicitConfig(t *testing.T) {
	res, err := Simulate(SimConfig{
		Model: VGG19(), TotalBatch: 128, Iterations: 5,
		Weights: []int{1, 1, 8}, SubsetSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgThroughput() <= 0 || res.Iterations != 5 {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestSimulateTunes(t *testing.T) {
	res, err := Simulate(SimConfig{Model: GoogLeNet(), TotalBatch: 256, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgThroughput() <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(SimConfig{TotalBatch: 64, Iterations: 1}); err == nil {
		t.Error("expected error for nil model")
	}
}

func TestComparePoint(t *testing.T) {
	cmp, err := Compare(VGG19(), 128, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Fela.AvgThroughput() <= cmp.MP.AvgThroughput() {
		t.Errorf("Fela %.1f should beat MP %.1f", cmp.Fela.AvgThroughput(), cmp.MP.AvgThroughput())
	}
	if cmp.DP.System != "DP" || cmp.HP.System != "HP" {
		t.Error("system labels wrong")
	}
}

func TestStragglerScenariosAndPID(t *testing.T) {
	base, err := Simulate(SimConfig{Model: VGG19(), TotalBatch: 128, Iterations: 8,
		Weights: []int{1, 1, 8}, SubsetSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	strag, err := Simulate(SimConfig{Model: VGG19(), TotalBatch: 128, Iterations: 8,
		Weights: []int{1, 1, 8}, SubsetSize: 1,
		Scenario: RoundRobinStraggler(2, 8)})
	if err != nil {
		t.Fatal(err)
	}
	if pid := PID(strag, base); pid <= 0 || pid >= 2 {
		t.Errorf("PID = %v, want in (0, 2)", pid)
	}
	if NoStraggler().Delay(0, 0) != 0 {
		t.Error("NoStraggler delays")
	}
	if ProbabilityStraggler(1, 3).Delay(5, 2) != 3 {
		t.Error("ProbabilityStraggler(p=1) must always delay")
	}
}

func TestFullPolicy(t *testing.T) {
	p := FullPolicy(2, 8)
	if !p.CTD || len(p.CTDSubset) != 2 || !p.ADS || !p.HF {
		t.Errorf("FullPolicy(2,8) = %+v", p)
	}
	p = FullPolicy(8, 8)
	if p.CTD {
		t.Error("full subset must disable CTD")
	}
}

func TestRealTimeRoundTrip(t *testing.T) {
	mk := func() *Network { return NewMLP(5, 6, 12, 3) }
	ds := SyntheticDataset(9, 64, 6, 3)
	cfg := RTConfig{Workers: 3, TotalBatch: 32, TokenBatch: 8, Iterations: 4, LR: 0.05}
	seq, err := RTSequential(mk(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := RTTrain(mk, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !ParamsEqual(seq, dist) {
		t.Fatal("real-time training diverged from sequential reference")
	}
}

func TestModelByName(t *testing.T) {
	m, err := ModelByName("VGG19")
	if err != nil || m.WeightLayerCount() != 19 {
		t.Fatalf("ModelByName: %v %v", m, err)
	}
	if _, err := ModelByName("bogus"); err == nil {
		t.Error("expected error")
	}
}

func TestSimulateTraced(t *testing.T) {
	res, tr, err := SimulateTraced(SimConfig{
		Model: VGG19(), TotalBatch: 128, Iterations: 2,
		Weights: []int{1, 1, 8}, SubsetSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgThroughput() <= 0 {
		t.Fatal("zero throughput")
	}
	if len(tr.Events) == 0 {
		t.Fatal("no trace events")
	}
	if out := tr.Timeline(50); len(out) == 0 {
		t.Fatal("empty timeline")
	}
	if _, _, err := SimulateTraced(SimConfig{}); err == nil {
		t.Error("expected error for nil model")
	}
}

func TestCommBreakdownExposed(t *testing.T) {
	res, err := Simulate(SimConfig{
		Model: VGG19(), TotalBatch: 256, Iterations: 3,
		Weights: []int{1, 1, 8}, SubsetSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Total() != res.BytesSent {
		t.Errorf("breakdown %d != wire %d", res.Comm.Total(), res.BytesSent)
	}
}
