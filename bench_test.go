package fela

// Benchmarks: one per table and figure of the paper's evaluation. Each
// benchmark regenerates its experiment on the simulated testbed (Quick
// context: 10 iterations per measurement, 2 warm-up iterations per
// tuning case) and reports domain-specific metrics alongside wall time:
// simulated samples/s for training runs, tuning cases for Figure 6, and
// so on. `go test -bench=. -benchmem` prints the full set;
// cmd/felabench runs the paper-scale (100-iteration) versions.

import (
	"testing"

	"fela/internal/experiments"
)

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1()
		if len(r.Rows) != 9 {
			b.Fatal("table 1 rows")
		}
	}
}

func BenchmarkFig1(b *testing.B) {
	ctx := experiments.Quick()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1(ctx)
		if len(r.Panels) != 3 {
			b.Fatal("fig1 panels")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Table2().CheckTable2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	ctx := experiments.Quick()
	models := experiments.BenchModels()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range models {
			if r := experiments.Fig5(ctx, m); len(r.SubModels) != 3 {
				b.Fatal("fig5 partition")
			}
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := experiments.Quick() // fresh cache: benchmark the search itself
		r, err := experiments.Fig6(ctx, experiments.BenchModels()[0])
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(r.Rounds[0].Result.Cases)), "tuning-cases")
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := experiments.Quick()
		if _, err := experiments.Fig7(ctx, experiments.BenchModels()[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	var lastRatio float64
	for i := 0; i < b.N; i++ {
		ctx := experiments.Quick()
		r, err := experiments.Fig8(ctx)
		if err != nil {
			b.Fatal(err)
		}
		_, lastRatio = r.Series[0].RatioRange("DP")
	}
	b.ReportMetric(lastRatio, "max-Fela/DP")
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := experiments.Quick()
		if _, err := experiments.Fig9(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := experiments.Quick()
		if _, err := experiments.Fig10(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatedIteration measures the simulator's own speed: how
// fast one tuned Fela BSP iteration (VGG19, batch 256) executes in the
// discrete-event engine, and the simulated training throughput it
// reports.
func BenchmarkSimulatedIteration(b *testing.B) {
	var at float64
	for i := 0; i < b.N; i++ {
		res, err := Simulate(SimConfig{
			Model: VGG19(), TotalBatch: 256, Iterations: 10,
			Weights: []int{1, 1, 8}, SubsetSize: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		at = res.AvgThroughput()
	}
	b.ReportMetric(at, "sim-samples/s")
}

// BenchmarkRealTimeTraining measures the real-execution engine: tokens
// trained per second of wall time with 4 goroutine workers.
func BenchmarkRealTimeTraining(b *testing.B) {
	mk := func() *Network { return NewMLP(42, 16, 32, 4) }
	ds := SyntheticDataset(7, 256, 16, 4)
	cfg := RTConfig{Workers: 4, TotalBatch: 64, TokenBatch: 8, Iterations: 10, LR: 0.05}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RTTrain(mk, ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
	tokens := float64(cfg.Iterations * cfg.TotalBatch / cfg.TokenBatch)
	b.ReportMetric(tokens*float64(b.N)/b.Elapsed().Seconds(), "tokens/s")
}

// BenchmarkExtensions regenerates the beyond-the-paper experiments:
// weak scaling, heterogeneous clusters and the SSP staleness sweep.
func BenchmarkExtensions(b *testing.B) {
	m := experiments.BenchModels()[0]
	for i := 0; i < b.N; i++ {
		ctx := experiments.Quick()
		if _, err := experiments.Scalability(ctx, m); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Heterogeneous(ctx, m, 0.6); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.SSP(ctx, m); err != nil {
			b.Fatal(err)
		}
	}
}
